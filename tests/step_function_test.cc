// Tests for the piecewise-constant StepFunction, including property sweeps
// against brute-force dense evaluation.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dpcluster/dp/step_function.h"
#include "dpcluster/random/rng.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// Dense reference copy of a step function.
std::vector<double> Densify(const StepFunction& f) {
  std::vector<double> out(f.domain_size());
  for (std::uint64_t i = 0; i < f.domain_size(); ++i) out[i] = f.ValueAt(i);
  return out;
}

// Random step function over a small domain.
StepFunction RandomStep(Rng& rng, std::uint64_t domain) {
  std::vector<std::uint64_t> starts = {0};
  std::vector<double> values = {static_cast<double>(rng.NextUint64(10))};
  for (std::uint64_t i = 1; i < domain; ++i) {
    if (rng.NextDouble() < 0.3) {
      starts.push_back(i);
      values.push_back(static_cast<double>(rng.NextUint64(10)));
    }
  }
  return StepFunction::FromBreakpoints(domain, std::move(starts),
                                       std::move(values));
}

TEST(StepFunctionTest, ConstantAndDense) {
  const StepFunction c = StepFunction::Constant(100, 3.5);
  EXPECT_EQ(c.domain_size(), 100u);
  EXPECT_EQ(c.num_pieces(), 1u);
  EXPECT_DOUBLE_EQ(c.ValueAt(0), 3.5);
  EXPECT_DOUBLE_EQ(c.ValueAt(99), 3.5);

  const std::vector<double> vals = {1.0, 2.0, 3.0};
  const StepFunction d = StepFunction::Dense(vals);
  EXPECT_EQ(d.domain_size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(d.ValueAt(i), vals[i]);
  }
}

TEST(StepFunctionTest, ValueAtPieceBoundaries) {
  const StepFunction f =
      StepFunction::FromBreakpoints(10, {0, 4, 7}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(f.ValueAt(0), 1.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(3), 1.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(4), 2.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(6), 2.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(7), 3.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(9), 3.0);
  EXPECT_EQ(f.PieceLength(0), 4u);
  EXPECT_EQ(f.PieceLength(1), 3u);
  EXPECT_EQ(f.PieceLength(2), 3u);
}

TEST(StepFunctionTest, MaxAndArgMax) {
  const StepFunction f =
      StepFunction::FromBreakpoints(10, {0, 4, 7}, {1.0, 5.0, 3.0});
  EXPECT_DOUBLE_EQ(f.MaxValue(), 5.0);
  EXPECT_EQ(f.ArgMaxFirst(), 4u);
}

TEST(StepFunctionTest, ShiftLeftMatchesDense) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t domain = 2 + rng.NextUint64(40);
    const StepFunction f = RandomStep(rng, domain);
    const auto dense = Densify(f);
    const std::uint64_t offset = rng.NextUint64(domain);
    const StepFunction g = f.ShiftLeft(offset);
    ASSERT_EQ(g.domain_size(), domain - offset);
    for (std::uint64_t i = 0; i < g.domain_size(); ++i) {
      EXPECT_DOUBLE_EQ(g.ValueAt(i), dense[i + offset]);
    }
  }
}

TEST(StepFunctionTest, PrefixMatchesDense) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t domain = 2 + rng.NextUint64(40);
    const StepFunction f = RandomStep(rng, domain);
    const auto dense = Densify(f);
    const std::uint64_t len = 1 + rng.NextUint64(domain);
    const StepFunction g = f.Prefix(len);
    ASSERT_EQ(g.domain_size(), len);
    for (std::uint64_t i = 0; i < len; ++i) {
      EXPECT_DOUBLE_EQ(g.ValueAt(i), dense[i]);
    }
  }
}

TEST(StepFunctionTest, PointwiseMinMatchesDense) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t domain = 2 + rng.NextUint64(40);
    const StepFunction a = RandomStep(rng, domain);
    const StepFunction b = RandomStep(rng, domain);
    const StepFunction m = StepFunction::PointwiseMin(a, b);
    for (std::uint64_t i = 0; i < domain; ++i) {
      EXPECT_DOUBLE_EQ(m.ValueAt(i), std::min(a.ValueAt(i), b.ValueAt(i)));
    }
  }
}

TEST(StepFunctionTest, EndpointWindowMinMatchesDense) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t domain = 2 + rng.NextUint64(40);
    const StepFunction f = RandomStep(rng, domain);
    const auto dense = Densify(f);
    const std::uint64_t window = 1 + rng.NextUint64(domain);
    const StepFunction w = f.EndpointWindowMin(window);
    ASSERT_EQ(w.domain_size(), domain - window + 1);
    for (std::uint64_t a = 0; a < w.domain_size(); ++a) {
      EXPECT_DOUBLE_EQ(w.ValueAt(a),
                       std::min(dense[a], dense[a + window - 1]))
          << "a=" << a << " window=" << window << " domain=" << domain;
    }
  }
}

TEST(StepFunctionTest, MaxEndpointWindowMinMatchesMaterialized) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t domain = 2 + rng.NextUint64(60);
    const StepFunction f = RandomStep(rng, domain);
    const std::uint64_t window = 1 + rng.NextUint64(domain);
    EXPECT_DOUBLE_EQ(f.MaxEndpointWindowMin(window),
                     f.EndpointWindowMin(window).MaxValue());
  }
}

TEST(StepFunctionTest, CoalesceMergesEqualNeighbors) {
  StepFunction f =
      StepFunction::FromBreakpoints(10, {0, 3, 6, 8}, {1.0, 1.0, 2.0, 2.0});
  f.Coalesce();
  EXPECT_EQ(f.num_pieces(), 2u);
  EXPECT_DOUBLE_EQ(f.ValueAt(5), 1.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(6), 2.0);
}

TEST(StepFunctionTest, QuasiConcavityCheck) {
  EXPECT_TRUE(StepFunction::FromBreakpoints(10, {0, 3, 6}, {1.0, 5.0, 2.0})
                  .IsQuasiConcave());
  EXPECT_TRUE(StepFunction::Constant(5, 0.0).IsQuasiConcave());
  EXPECT_TRUE(StepFunction::FromBreakpoints(10, {0, 5}, {1.0, 9.0})
                  .IsQuasiConcave());  // Non-decreasing.
  EXPECT_FALSE(StepFunction::FromBreakpoints(10, {0, 3, 6}, {5.0, 1.0, 5.0})
                   .IsQuasiConcave());  // Valley.
}

TEST(StepFunctionTest, WindowMinOfQuasiConcaveIsTrueMin) {
  // For quasi-concave f, min over any interval equals the endpoint min — the
  // identity RecConcave's interval scores rely on.
  const StepFunction f = StepFunction::FromBreakpoints(
      20, {0, 5, 10, 15}, {1.0, 4.0, 9.0, 2.0});
  ASSERT_TRUE(f.IsQuasiConcave());
  const auto dense = Densify(f);
  for (std::uint64_t window = 1; window <= 20; ++window) {
    const StepFunction w = f.EndpointWindowMin(window);
    for (std::uint64_t a = 0; a + window <= 20; ++a) {
      const double true_min =
          *std::min_element(dense.begin() + static_cast<std::ptrdiff_t>(a),
                            dense.begin() + static_cast<std::ptrdiff_t>(a + window));
      EXPECT_DOUBLE_EQ(w.ValueAt(a), true_min);
    }
  }
}

TEST(StepFunctionTest, HugeDomainStaysCheap) {
  const std::uint64_t domain = 1ull << 50;
  const StepFunction f = StepFunction::FromBreakpoints(
      domain, {0, 1000, 2000}, {0.0, 7.0, 1.0});
  EXPECT_DOUBLE_EQ(f.ValueAt(1500), 7.0);
  EXPECT_DOUBLE_EQ(f.ValueAt(domain - 1), 1.0);
  EXPECT_DOUBLE_EQ(f.MaxEndpointWindowMin(1), 7.0);
  EXPECT_DOUBLE_EQ(f.MaxEndpointWindowMin(domain), 0.0);
  const StepFunction w = f.EndpointWindowMin(500);
  EXPECT_LE(w.num_pieces(), 8u);
}

}  // namespace
}  // namespace dpcluster
