// Shared helpers for the dpcluster test suite.

#ifndef DPCLUSTER_TESTS_TEST_UTIL_H_
#define DPCLUSTER_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()
#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()

#define ASSERT_OK_AND_ASSIGN(lhs, expr)            \
  ASSERT_OK_AND_ASSIGN_IMPL_(                      \
      DPC_STATUS_CONCAT_(_test_result, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)        \
  auto tmp = (expr);                                      \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();      \
  lhs = std::move(tmp).value()

namespace dpcluster {
namespace testing_util {

/// A d-dimensional PointSet from an initializer-style flat buffer.
inline PointSet MakePointSet(std::size_t dim, std::vector<double> flat) {
  return PointSet(dim, std::move(flat));
}

/// n points iid uniform over [0, 1]^dim.
inline PointSet UniformCube(Rng& rng, std::size_t n, std::size_t dim) {
  PointSet s(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& x : p) x = rng.NextDouble();
    s.Add(p);
  }
  return s;
}

/// Sample mean of a scalar callback over `trials` evaluations.
template <typename F>
double SampleMean(std::size_t trials, F&& f) {
  double sum = 0.0;
  for (std::size_t i = 0; i < trials; ++i) sum += f();
  return sum / static_cast<double>(trials);
}

}  // namespace testing_util
}  // namespace dpcluster

#endif  // DPCLUSTER_TESTS_TEST_UTIL_H_
