// Tests for the Johnson-Lindenstrauss transform (Lemma 4.10).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/la/jl_transform.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/la/vector_ops.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(JlTransformTest, OutputDimension) {
  Rng rng(1);
  const JlTransform jl(rng, 64, 10);
  EXPECT_EQ(jl.in_dim(), 64u);
  EXPECT_EQ(jl.out_dim(), 10u);
  const std::vector<double> x(64, 1.0);
  EXPECT_EQ(jl.Apply(x).size(), 10u);
}

TEST(JlTransformTest, LinearInInput) {
  Rng rng(2);
  const JlTransform jl(rng, 16, 8);
  std::vector<double> x(16);
  std::vector<double> y(16);
  FillGaussian(rng, 1.0, x);
  FillGaussian(rng, 1.0, y);
  const auto fx = jl.Apply(x);
  const auto fy = jl.Apply(y);
  const auto fsum = jl.Apply(Add(x, y));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(fsum[i], fx[i] + fy[i], 1e-10);
  }
}

TEST(JlTransformTest, NormPreservedInExpectation) {
  // E||f(x)||^2 = ||x||^2 for the scaled Gaussian projection.
  Rng rng(3);
  std::vector<double> x(32);
  FillGaussian(rng, 1.0, x);
  const double norm2 = Dot(x, x);
  double sum = 0.0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    const JlTransform jl(rng, 32, 8);
    const auto fx = jl.Apply(x);
    sum += Dot(fx, fx);
  }
  EXPECT_NEAR(sum / trials / norm2, 1.0, 0.05);
}

// Distance-preservation sweep over the source dimension: with k sized by
// DimensionFor, all pairwise distances of a point cloud stay within 1 +- eta.
class JlDistortionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JlDistortionTest, PairwiseDistancesPreserved) {
  const std::size_t d = GetParam();
  Rng rng(100 + d);
  const std::size_t n = 24;
  const double eta = 0.5;
  const std::size_t k = JlTransform::DimensionFor(n, eta, 0.01);
  const JlTransform jl(rng, d, k);

  const PointSet cloud = testing_util::UniformCube(rng, n, d);
  std::vector<std::vector<double>> projected;
  projected.reserve(n);
  for (std::size_t i = 0; i < n; ++i) projected.push_back(jl.Apply(cloud[i]));

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double orig = SquaredDistance(cloud[i], cloud[j]);
      const double proj = SquaredDistance(projected[i], projected[j]);
      EXPECT_GE(proj, (1.0 - eta) * orig);
      EXPECT_LE(proj, (1.0 + eta) * orig);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, JlDistortionTest,
                         ::testing::Values<std::size_t>(4, 16, 64, 256));

TEST(JlTransformTest, DimensionForFormula) {
  // k = ceil(8/eta^2 ln(2 n^2 / beta)).
  const std::size_t k = JlTransform::DimensionFor(1000, 0.5, 0.1);
  const double expect = 8.0 / 0.25 * std::log(2.0 * 1000.0 * 1000.0 / 0.1);
  EXPECT_EQ(k, static_cast<std::size_t>(std::ceil(expect)));
  // Smaller eta needs more dimensions.
  EXPECT_GT(JlTransform::DimensionFor(1000, 0.1, 0.1),
            JlTransform::DimensionFor(1000, 0.5, 0.1));
}

}  // namespace
}  // namespace dpcluster
