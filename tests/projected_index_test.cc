// Pins the projected candidate index (geo/spatial_grid.cc, kProjected) to the
// exact grid: for every scenario family, at d in {16, 32, 64} and 1/2/8
// threads, k-NN rows and radius counts must be bit-identical between the two
// geometries — before and after structural removals. Also pins the kAuto
// crossover (ResolveIndexGeometry) and the projected target dimension.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dpcluster/data/registry.h"
#include "dpcluster/data/scenario.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/random/rng.h"
#include "test_util.h"

namespace dpcluster {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr std::size_t kDims[] = {16, 32, 64};

std::vector<std::uint32_t> AllIds(std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  return ids;
}

// Exact and projected answers for one live query set, compared bit for bit.
void ExpectGeometriesAgree(const SpatialGrid& exact, const SpatialGrid& proj,
                           std::span<const std::uint32_t> queries,
                           std::size_t k, double radius, ThreadPool* pool) {
  std::vector<double> knn_exact(queries.size() * k);
  std::vector<double> knn_proj(queries.size() * k);
  exact.BatchKnnDistancesFor(queries, k, knn_exact, pool, /*sorted=*/true);
  proj.BatchKnnDistancesFor(queries, k, knn_proj, pool, /*sorted=*/true);
  for (std::size_t i = 0; i < knn_exact.size(); ++i) {
    ASSERT_EQ(knn_exact[i], knn_proj[i])
        << "knn row " << i / k << " entry " << i % k;
  }
  std::vector<std::size_t> cnt_exact(queries.size());
  std::vector<std::size_t> cnt_proj(queries.size());
  exact.BatchCountWithin(queries, radius, cnt_exact, pool);
  proj.BatchCountWithin(queries, radius, cnt_proj, pool);
  for (std::size_t i = 0; i < cnt_exact.size(); ++i) {
    ASSERT_EQ(cnt_exact[i], cnt_proj[i]) << "count query " << i;
  }
}

TEST(ProjectedIndexTest, BitIdenticalToExactAcrossScenarioFamilies) {
  const auto names = ScenarioRegistry::Global().Names();
  ASSERT_GE(names.size(), 8u);
  for (const std::string& name : names) {
    for (const std::size_t d : kDims) {
      ScenarioSpec spec;
      spec.scenario = name;
      spec.n = 384;
      spec.dim = d;
      spec.levels = 1u << 10;
      Rng rng(0xC0FFEEu + d);
      ASSERT_OK_AND_ASSIGN(const ScenarioFamily* family,
                           ScenarioRegistry::Global().Lookup(name));
      ASSERT_OK_AND_ASSIGN(ScenarioInstance instance,
                           family->Generate(rng, spec));
      const PointSet& s = instance.points;
      const std::size_t n = s.size();
      const std::size_t k = 8;
      // A radius large enough to be non-trivial on every family.
      const double radius = 0.25 * instance.domain.axis_length() *
                            std::sqrt(static_cast<double>(d));

      ASSERT_OK_AND_ASSIGN(
          SpatialGrid exact,
          SpatialGrid::Build(s, instance.domain, k, IndexGeometry::kExact));
      ASSERT_OK_AND_ASSIGN(SpatialGrid proj,
                           SpatialGrid::Build(s, instance.domain, k,
                                              IndexGeometry::kProjected));
      ASSERT_EQ(proj.geometry(), IndexGeometry::kProjected);
      ASSERT_EQ(proj.geom_dim(), ProjectedGridDim(n, d, k));
      ASSERT_GE(proj.geom_dim(), 2u);
      ASSERT_LE(proj.geom_dim(), ProjectedIndexDim(n));

      for (const std::size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        SCOPED_TRACE(name + " d=" + std::to_string(d) +
                     " threads=" + std::to_string(threads));
        ExpectGeometriesAgree(exact, proj, AllIds(n), k, radius, &pool);
      }

      // Structural removal: drop every third point from both geometries and
      // re-compare over the survivors (serial pool is enough here — thread
      // invariance is covered above).
      std::vector<std::uint32_t> live;
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 3 == 0) {
          exact.Remove(i);
          proj.Remove(i);
        } else {
          live.push_back(static_cast<std::uint32_t>(i));
        }
      }
      SCOPED_TRACE(name + " d=" + std::to_string(d) + " after removal");
      ExpectGeometriesAgree(exact, proj, live, k, radius, nullptr);
    }
  }
}

TEST(ProjectedIndexTest, DuplicateAndDegeneratePointsStayExact) {
  // Many exact duplicates stress the zero-distance ties and the ring-0
  // self-exclusion under the projected bound.
  Rng rng(7);
  const std::size_t d = 32;
  PointSet s = testing_util::UniformCube(rng, 64, d);
  for (std::size_t i = 0; i < 64; ++i) s.Add(s[i % 16]);  // duplicate rows
  GridDomain domain(1u << 12, d);
  domain.SnapAll(s);
  const std::size_t n = s.size();
  ASSERT_OK_AND_ASSIGN(
      SpatialGrid exact,
      SpatialGrid::Build(s, domain, 4, IndexGeometry::kExact));
  ASSERT_OK_AND_ASSIGN(
      SpatialGrid proj,
      SpatialGrid::Build(s, domain, 4, IndexGeometry::kProjected));
  ExpectGeometriesAgree(exact, proj, AllIds(n), /*k=*/6, /*radius=*/1.5,
                        nullptr);
}

TEST(ProjectedIndexTest, IndexedDatasetProjectedOptInMatchesAuto) {
  Rng rng(11);
  const std::size_t d = 48;
  PointSet s = testing_util::UniformCube(rng, 512, d);
  GridDomain domain(1u << 12, d);
  domain.SnapAll(s);
  ASSERT_OK_AND_ASSIGN(IndexedDataset index,
                       IndexedDataset::Create(s, domain));
  EXPECT_EQ(index.index_geometry(), IndexGeometry::kAuto);
  std::vector<double> knn_auto(512 * 4);
  index.BatchKnn(4, knn_auto, nullptr, /*sorted=*/true);
  EXPECT_EQ(index.EnsureGrid(4).geometry(), IndexGeometry::kExact);

  ASSERT_OK_AND_ASSIGN(IndexedDataset proj_index,
                       IndexedDataset::Create(s, domain));
  proj_index.set_index_geometry(IndexGeometry::kProjected);
  std::vector<double> knn_proj(512 * 4);
  proj_index.BatchKnn(4, knn_proj, nullptr, /*sorted=*/true);
  EXPECT_EQ(proj_index.EnsureGrid(4).geometry(), IndexGeometry::kProjected);
  EXPECT_EQ(knn_auto, knn_proj);
}

TEST(ProjectedIndexTest, ResolveIndexGeometryCrossover) {
  // Explicit requests pass through untouched.
  EXPECT_EQ(ResolveIndexGeometry(IndexGeometry::kExact, 4096, 64, 16),
            IndexGeometry::kExact);
  EXPECT_EQ(ResolveIndexGeometry(IndexGeometry::kProjected, 4096, 2, 16),
            IndexGeometry::kProjected);
  // kAuto is kExact at every shape: the blocked dense scan won every
  // measured matchup against the projected filter, including the degenerate
  // one-cell shapes the projection was built for (see ResolveIndexGeometry).
  EXPECT_EQ(ResolveIndexGeometry(IndexGeometry::kAuto, 4096, 2, 16),
            IndexGeometry::kExact);
  EXPECT_EQ(ResolveIndexGeometry(IndexGeometry::kAuto, 4096, 8, 16),
            IndexGeometry::kExact);
  EXPECT_EQ(ResolveIndexGeometry(IndexGeometry::kAuto, 4096, 20, 16),
            IndexGeometry::kExact);
  EXPECT_EQ(ResolveIndexGeometry(IndexGeometry::kAuto, 4096, 64, 16),
            IndexGeometry::kExact);
  EXPECT_EQ(ResolveIndexGeometry(IndexGeometry::kAuto, 16, 20, 4),
            IndexGeometry::kExact);
  // The collapse predicate that extends ResolveProfileIndex's grid range.
  EXPECT_TRUE(GridCollapsesToSingleCell(4096, 64, 16));
  EXPECT_TRUE(GridCollapsesToSingleCell(4096, 32, 1499));
  EXPECT_FALSE(GridCollapsesToSingleCell(4096, 2, 16));
}

TEST(ProjectedIndexTest, GeometryNamesRoundTrip) {
  for (const IndexGeometry g : {IndexGeometry::kAuto, IndexGeometry::kExact,
                                IndexGeometry::kProjected}) {
    ASSERT_OK_AND_ASSIGN(const IndexGeometry back,
                         IndexGeometryFromName(IndexGeometryName(g)));
    EXPECT_EQ(back, g);
  }
  EXPECT_FALSE(IndexGeometryFromName("bogus").ok());
}

TEST(ProjectedIndexTest, ProjectedIndexDimClamps) {
  EXPECT_EQ(ProjectedIndexDim(2), 4u);
  EXPECT_EQ(ProjectedIndexDim(4096), 8u);
  EXPECT_GE(ProjectedIndexDim(1u << 30), 12u);
  EXPECT_LE(ProjectedIndexDim(1u << 30), 12u);
}

}  // namespace
}  // namespace dpcluster
