// Tests for the Solver façade: algorithm registry, request validation,
// budget sessions, end-to-end runs, and batched RunAll accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/api/registry.h"
#include "dpcluster/api/solver.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

ClusterWorkload SmallWorkload(std::uint64_t seed, std::size_t dim = 1) {
  Rng rng(seed);
  PlantedClusterSpec spec;
  spec.n = 1200;
  spec.t = 700;
  spec.dim = dim;
  spec.levels = 1024;
  spec.cluster_radius = 0.015;
  return MakePlantedCluster(rng, spec);
}

Request SmallRequest(const ClusterWorkload& w, const std::string& algorithm,
                     double eps = 8.0) {
  Request request;
  request.algorithm = algorithm;
  request.data = w.points;
  request.domain = w.domain;
  request.t = w.t;
  request.budget = {eps, 1e-8};
  request.beta = 0.1;
  return request;
}

// --- Registry -------------------------------------------------------------

TEST(RegistryTest, GlobalRegistryHoldsAtLeastSixAlgorithms) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  const std::vector<std::string> names = registry.Names();
  EXPECT_GE(names.size(), 6u);
  for (const char* expected :
       {"one_cluster", "k_cluster", "outlier_screen", "interior_point",
        "sample_aggregate", "exp_mech_baseline", "noisy_mean_baseline",
        "threshold_release_1d", "nonprivate"}) {
    EXPECT_TRUE(registry.Contains(expected)) << expected;
  }
  // Every entry has a self-consistent name and a description.
  for (const std::string& name : names) {
    ASSERT_OK_AND_ASSIGN(const Algorithm* algorithm, registry.Lookup(name));
    EXPECT_EQ(algorithm->name(), name);
    EXPECT_FALSE(algorithm->description().empty());
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  const auto result = AlgorithmRegistry::Global().Lookup("no_such_algorithm");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The message lists the registered names to help the caller.
  EXPECT_NE(result.status().message().find("one_cluster"), std::string::npos);
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  AlgorithmRegistry registry;
  ASSERT_OK(RegisterBuiltinAlgorithms(registry));
  const std::size_t size = registry.size();
  // Re-registering the builtins is a no-op, not an error or a growth.
  ASSERT_OK(RegisterBuiltinAlgorithms(registry));
  EXPECT_EQ(registry.size(), size);
}

// --- Request validation ---------------------------------------------------

TEST(RequestValidationTest, GenericFieldChecks) {
  const ClusterWorkload w = SmallWorkload(7);
  Request request = SmallRequest(w, "one_cluster");
  EXPECT_OK(request.Validate());

  Request bad = request;
  bad.beta = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = request;
  bad.budget.epsilon = -1.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = request;
  bad.data = PointSet(2);
  EXPECT_FALSE(bad.Validate().ok());

  bad = request;
  bad.domain = GridDomain(64, 2);  // dim mismatch with 1D data
  EXPECT_FALSE(bad.Validate().ok());

  bad = request;
  bad.tuning.radius_budget_fraction = 1.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = request;
  bad.tuning.refine_fraction = 1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(RequestValidationTest, AlgorithmSpecificChecksSurfaceThroughSolver) {
  const ClusterWorkload w = SmallWorkload(8);
  Solver solver;

  // one_cluster needs t.
  Request request = SmallRequest(w, "one_cluster");
  request.t = 0;
  EXPECT_FALSE(solver.Run(request).ok());

  // one_cluster needs a domain.
  request = SmallRequest(w, "one_cluster");
  request.domain.reset();
  EXPECT_FALSE(solver.Run(request).ok());

  // threshold_release_1d refuses multi-dimensional data.
  const ClusterWorkload w2 = SmallWorkload(9, 2);
  request = SmallRequest(w2, "threshold_release_1d");
  const auto response = solver.Run(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);

  // Unknown algorithm propagates NotFound.
  request = SmallRequest(w, "bogus");
  EXPECT_EQ(solver.Run(request).status().code(), StatusCode::kNotFound);
}

// --- Budget sessions ------------------------------------------------------

TEST(BudgetSessionTest, ChargesMirrorIntoSharedAccountant) {
  Accountant shared;
  BudgetSession session(&shared, "req0", {1.0, 1e-9});
  ASSERT_OK(session.Charge("phase_a", {0.4, 5e-10}));
  ASSERT_OK(session.Charge("phase_b", {0.6, 5e-10}));
  EXPECT_EQ(session.ledger().interactions(), 2u);
  EXPECT_EQ(shared.interactions(), 2u);
  EXPECT_EQ(shared.charges()[0].label, "req0/phase_a");
  EXPECT_NEAR(session.spent().epsilon, 1.0, 1e-12);
  EXPECT_NEAR(session.remaining().epsilon, 0.0, 1e-12);
}

TEST(BudgetSessionTest, OverdrawIsRejected) {
  Accountant shared;
  BudgetSession session(&shared, "req0", {1.0, 1e-9});
  ASSERT_OK(session.Charge("phase_a", {0.9, 0.0}));
  const Status overdraw = session.Charge("phase_b", {0.2, 0.0});
  ASSERT_FALSE(overdraw.ok());
  EXPECT_EQ(overdraw.code(), StatusCode::kResourceExhausted);
  // The rejected charge reached neither ledger.
  EXPECT_EQ(session.ledger().interactions(), 1u);
  EXPECT_EQ(shared.interactions(), 1u);
}

// --- End-to-end runs ------------------------------------------------------

TEST(SolverTest, OneClusterEndToEnd) {
  const ClusterWorkload w = SmallWorkload(31);
  Solver solver(SolverOptions{.seed = 31});
  ASSERT_OK_AND_ASSIGN(Response response,
                       solver.Run(SmallRequest(w, "one_cluster")));
  EXPECT_EQ(response.algorithm, "one_cluster");
  EXPECT_EQ(response.kind, ProblemKind::kOneCluster);
  ASSERT_EQ(response.ball.center.size(), w.points.dim());
  EXPECT_GT(response.ball.radius, 0.0);
  ASSERT_EQ(response.balls.size(), 1u);
  // The pipeline charges its two phases, summing to the request budget.
  EXPECT_EQ(response.ledger.interactions(), 2u);
  EXPECT_NEAR(response.charged.epsilon, 8.0, 1e-9);
  EXPECT_NEAR(response.charged.delta, 1e-8, 1e-18);
  // The solver scored the release on the raw data.
  ASSERT_TRUE(response.diagnostics.has_value());
  EXPECT_GT(response.diagnostics->captured, 0u);
  EXPECT_GE(response.wall_ms, 0.0);
  // The solver's accountant saw the same spend, scope-prefixed.
  EXPECT_NEAR(solver.TotalSpend().epsilon, 8.0, 1e-9);
  EXPECT_EQ(solver.accountant().charges()[0].label,
            "one_cluster#0/good_radius");
}

TEST(SolverTest, KClusterEndToEnd) {
  Rng rng(99);
  const ClusterWorkload w =
      MakeGaussianMixture(rng, 1500, 2, 2, 512, 0.015, 0.05);
  Request request;
  request.algorithm = "k_cluster";
  request.data = w.points;
  request.domain = w.domain;
  request.k = 2;
  request.budget = {16.0, 1e-8};
  request.beta = 0.2;
  Solver solver(SolverOptions{.seed = 99});
  ASSERT_OK_AND_ASSIGN(Response response, solver.Run(request));
  EXPECT_EQ(response.kind, ProblemKind::kKCluster);
  EXPECT_GE(response.balls.size(), 1u);
  EXPECT_LE(response.balls.size(), 2u);
  for (const Ball& ball : response.balls) {
    EXPECT_EQ(ball.center.size(), 2u);
  }
  EXPECT_LT(response.uncovered, w.points.size());
  // Spend stays within the request budget under basic composition.
  EXPECT_LE(response.charged.epsilon, 16.0 + 1e-6);
  EXPECT_LE(response.charged.delta, 1e-8 + 1e-18);
  // Per-round scoped ledger entries (good_radius/good_center/refine).
  EXPECT_GE(response.ledger.interactions(), 3u);
  EXPECT_EQ(response.ledger.charges()[0].label, "round0/good_radius");
}

TEST(SolverTest, ScalarReleaseForInteriorPoint) {
  const ClusterWorkload w = SmallWorkload(55);
  Request request = SmallRequest(w, "interior_point");
  request.t = 0;  // not used by interior_point
  Solver solver(SolverOptions{.seed = 55});
  ASSERT_OK_AND_ASSIGN(Response response, solver.Run(request));
  EXPECT_EQ(response.kind, ProblemKind::kInteriorPoint);
  EXPECT_FALSE(std::isnan(response.scalar));
  EXPECT_GE(response.scalar, 0.0);
  EXPECT_LE(response.scalar, 1.0);
  EXPECT_NEAR(response.charged.epsilon, 8.0, 1e-9);
}

TEST(SolverTest, OneClusterRefineTightensRadiusWithinBudget) {
  const ClusterWorkload w = SmallWorkload(41);
  Request request = SmallRequest(w, "one_cluster");
  request.tuning.refine_one_cluster = true;
  request.tuning.refine_fraction = 0.25;
  Solver solver(SolverOptions{.seed = 41});
  ASSERT_OK_AND_ASSIGN(Response response, solver.Run(request));
  // Pipeline (75%) + refine (25%) still sum to the request epsilon.
  EXPECT_EQ(response.ledger.interactions(), 3u);
  EXPECT_NEAR(response.charged.epsilon, 8.0, 1e-9);
  EXPECT_NE(response.note.find("refined"), std::string::npos);
  // The refined radius is far below the worst-case guarantee (~the cube).
  EXPECT_LT(response.ball.radius, 0.5);
}

TEST(SolverTest, MidRunFailureIsConservativelyAccounted) {
  // exp_mech_baseline refuses this domain mid-run (grid too large), after
  // the request already passed validation. The internal layer reports no
  // partial ledger, so the solver books the whole request budget.
  const ClusterWorkload w = SmallWorkload(42, 2);
  Request request = SmallRequest(w, "exp_mech_baseline", 2.0);
  request.tuning.max_grid_centers = 4;
  Solver solver;
  const auto response = solver.Run(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NEAR(solver.TotalSpend().epsilon, 2.0, 1e-9);
  ASSERT_EQ(solver.accountant().charges().size(), 1u);
  EXPECT_NE(solver.accountant().charges()[0].label.find("failed:"),
            std::string::npos);
}

TEST(SolverTest, SampleAggregateEndToEnd) {
  // Concentrated data: block means cluster tightly, so the aggregator finds
  // them (SA needs many blocks — the adapter's default block size targets
  // k ~ 400 of them).
  Rng rng(11);
  PointSet s(2);
  for (std::size_t i = 0; i < 20000; ++i) {
    s.Add(std::vector<double>{0.4 + 0.02 * (rng.NextDouble() - 0.5),
                              0.6 + 0.02 * (rng.NextDouble() - 0.5)});
  }
  const GridDomain domain(1u << 12, 2);
  Request request;
  request.algorithm = "sample_aggregate";
  request.data = std::move(s);
  request.domain = domain;
  request.budget = {8.0, 1e-8};
  Solver solver(SolverOptions{.seed = 11});
  ASSERT_OK_AND_ASSIGN(Response response, solver.Run(request));
  EXPECT_EQ(response.kind, ProblemKind::kSampleAggregate);
  ASSERT_EQ(response.ball.center.size(), 2u);
  EXPECT_NEAR(response.ball.center[0], 0.4, 0.05);
  EXPECT_NEAR(response.ball.center[1], 0.6, 0.05);
  EXPECT_NEAR(response.charged.epsilon, 8.0, 1e-9);
  // The adapter surfaces the Lemma 6.4 amplified budget in the note.
  EXPECT_NE(response.note.find("amplified"), std::string::npos);
}

// --- RunAll ---------------------------------------------------------------

TEST(SolverTest, RunAllChargesOneAccountantWithPerRequestScopes) {
  const ClusterWorkload w = SmallWorkload(77);
  std::vector<Request> batch;
  batch.push_back(SmallRequest(w, "one_cluster", 4.0));
  batch.push_back(SmallRequest(w, "nonprivate"));
  batch.push_back(SmallRequest(w, "threshold_release_1d", 2.0));
  Request labeled = SmallRequest(w, "one_cluster", 1.0);
  labeled.label = "my_request";
  batch.push_back(labeled);

  Solver solver(SolverOptions{.seed = 77});
  const auto responses = solver.RunAll(batch);
  ASSERT_EQ(responses.size(), batch.size());

  PrivacyParams sum{0.0, 0.0};
  for (const auto& response : responses) {
    ASSERT_OK(response.status());
    sum.epsilon += response->charged.epsilon;
    sum.delta += response->charged.delta;
  }
  // The shared accountant's total equals the sum of per-request charges.
  const PrivacyParams total = solver.TotalSpend();
  EXPECT_NEAR(total.epsilon, sum.epsilon, 1e-9);
  EXPECT_NEAR(total.delta, sum.delta, 1e-18);
  // 4 + 0 + 2 + 1 epsilon across the batch.
  EXPECT_NEAR(total.epsilon, 7.0, 1e-9);

  // Scopes: auto-numbered by default, caller label when provided.
  bool saw_labeled = false;
  for (const auto& charge : solver.accountant().charges()) {
    if (charge.label.rfind("my_request/", 0) == 0) saw_labeled = true;
  }
  EXPECT_TRUE(saw_labeled);
}

TEST(SolverTest, RunAllReportsPerRequestFailures) {
  const ClusterWorkload w = SmallWorkload(78);
  std::vector<Request> batch;
  batch.push_back(SmallRequest(w, "nonprivate"));
  batch.push_back(SmallRequest(w, "does_not_exist"));
  Solver solver;
  const auto responses = solver.RunAll(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok());
  ASSERT_FALSE(responses[1].ok());
  EXPECT_EQ(responses[1].status().code(), StatusCode::kNotFound);
  // The failing request charged nothing.
  EXPECT_NEAR(solver.TotalSpend().epsilon, 0.0, 1e-12);
}

// --- Shared geometry index (the RunAll index-reuse hook) ------------------

TEST(SolverTest, RunAllSharedBitIdenticalToUnshared) {
  const ClusterWorkload w = SmallWorkload(91, 2);
  const auto make_batch = [&] {
    std::vector<Request> batch;
    batch.push_back(SmallRequest(w, "one_cluster"));
    Request kc = SmallRequest(w, "k_cluster");
    kc.k = 2;
    kc.t = 0;  // Spread the remaining points across rounds.
    batch.push_back(kc);
    Request outlier = SmallRequest(w, "outlier_screen");
    outlier.inlier_fraction = 0.8;
    batch.push_back(outlier);
    return batch;
  };

  std::vector<Request> unshared = make_batch();
  Solver plain;
  const auto want = plain.RunAll(unshared);

  std::vector<Request> shared = make_batch();
  Solver reusing;  // Same default seed: identical per-request Rng streams.
  const auto got = reusing.RunAllShared(shared);

  // One index, attached to every request in the batch, fully active after.
  ASSERT_NE(shared[0].shared_index, nullptr);
  EXPECT_EQ(shared[0].shared_index.get(), shared[1].shared_index.get());
  EXPECT_EQ(shared[0].shared_index.get(), shared[2].shared_index.get());
  EXPECT_EQ(shared[0].shared_index->active_size(), w.points.size());

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << i;
    ASSERT_TRUE(want[i].ok()) << i;
    EXPECT_EQ(got[i]->ball.center, want[i]->ball.center) << i;
    EXPECT_EQ(got[i]->ball.radius, want[i]->ball.radius) << i;
    ASSERT_EQ(got[i]->balls.size(), want[i]->balls.size()) << i;
    for (std::size_t b = 0; b < got[i]->balls.size(); ++b) {
      EXPECT_EQ(got[i]->balls[b].center, want[i]->balls[b].center)
          << i << " ball=" << b;
      EXPECT_EQ(got[i]->balls[b].radius, want[i]->balls[b].radius)
          << i << " ball=" << b;
    }
  }
}

TEST(SolverTest, MismatchedSharedIndexIsRejectedByValidation) {
  const ClusterWorkload w = SmallWorkload(92, 2);
  const ClusterWorkload other = SmallWorkload(93, 2);
  Request request = SmallRequest(w, "one_cluster");
  Request wrong = SmallRequest(other, "one_cluster");
  ASSERT_OK_AND_ASSIGN(request.shared_index, BuildSharedIndex(wrong));
  Solver solver;
  const auto response = solver.Run(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverTest, ShareIndexAcrossSkipsForeignData) {
  const ClusterWorkload w = SmallWorkload(94, 2);
  const ClusterWorkload other = SmallWorkload(95, 2);
  std::vector<Request> batch;
  batch.push_back(SmallRequest(w, "one_cluster"));
  batch.push_back(SmallRequest(other, "one_cluster"));
  batch.push_back(SmallRequest(w, "nonprivate"));
  ASSERT_OK_AND_ASSIGN(const std::size_t attached, ShareIndexAcross(batch));
  EXPECT_EQ(attached, 2u);  // Requests 0 and 2 share w's data.
  EXPECT_NE(batch[0].shared_index, nullptr);
  EXPECT_EQ(batch[1].shared_index, nullptr);
  EXPECT_EQ(batch[0].shared_index.get(), batch[2].shared_index.get());
}

}  // namespace
}  // namespace dpcluster
