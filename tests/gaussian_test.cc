// Tests for the Gaussian mechanism (Theorem 2.4).

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/dp/gaussian_mechanism.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(GaussianMechanismTest, SigmaMatchesTheorem) {
  const PrivacyParams p{0.5, 1e-6};
  ASSERT_OK_AND_ASSIGN(auto mech, GaussianMechanism::Create(p, 3.0));
  const double expect = (3.0 / 0.5) * std::sqrt(2.0 * std::log(1.25 / 1e-6));
  EXPECT_NEAR(mech.sigma(), expect, 1e-12);
}

TEST(GaussianMechanismTest, RejectsOutOfRangeParams) {
  EXPECT_FALSE(GaussianMechanism::Create({1.5, 1e-6}, 1.0).ok());  // eps >= 1.
  EXPECT_FALSE(GaussianMechanism::Create({0.5, 0.0}, 1.0).ok());   // delta = 0.
  EXPECT_FALSE(GaussianMechanism::Create({0.0, 1e-6}, 1.0).ok());
  EXPECT_FALSE(GaussianMechanism::Create({0.5, 1e-6}, 0.0).ok());
}

TEST(GaussianMechanismTest, NoiseHasExpectedSpread) {
  Rng rng(1);
  const PrivacyParams p{0.9, 1e-5};
  ASSERT_OK_AND_ASSIGN(auto mech, GaussianMechanism::Create(p, 1.0));
  double sq = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double x = mech.Release(rng, 0.0);
    sq += x * x;
  }
  EXPECT_NEAR(std::sqrt(sq / trials), mech.sigma(), mech.sigma() * 0.05);
}

TEST(GaussianMechanismTest, TailBoundHolds) {
  Rng rng(2);
  const PrivacyParams p{0.5, 1e-5};
  ASSERT_OK_AND_ASSIGN(auto mech, GaussianMechanism::Create(p, 1.0));
  const double beta = 0.05;
  const double bound = mech.TailBound(beta);
  int exceed = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (std::abs(mech.Release(rng, 0.0)) > bound) ++exceed;
  }
  // The Gaussian tail bound is conservative; observed rate must be <= beta.
  EXPECT_LE(static_cast<double>(exceed) / trials, beta);
}

TEST(GaussianMechanismTest, VectorRelease) {
  Rng rng(3);
  const PrivacyParams p{0.5, 1e-5};
  ASSERT_OK_AND_ASSIGN(auto mech, GaussianMechanism::Create(p, 1.0));
  const std::vector<double> v(16, 5.0);
  const auto out = mech.ReleaseVector(rng, v);
  ASSERT_EQ(out.size(), 16u);
  double mean = 0.0;
  for (double x : out) mean += x;
  mean /= 16.0;
  EXPECT_NEAR(mean, 5.0, mech.sigma());
}

TEST(GaussianMechanismTest, SmallerDeltaMoreNoise) {
  ASSERT_OK_AND_ASSIGN(auto loose, GaussianMechanism::Create({0.5, 1e-3}, 1.0));
  ASSERT_OK_AND_ASSIGN(auto tight, GaussianMechanism::Create({0.5, 1e-12}, 1.0));
  EXPECT_GT(tight.sigma(), loose.sigma());
}

}  // namespace
}  // namespace dpcluster
