// Tests for geo/SpatialGrid: the expanding ring search must return exactly
// the brute-force k-NN distance multiset — same doubles, bit for bit — for
// every data shape (uniform, duplicate-heavy, degenerate, boundary) and at
// any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/thread_pool.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using testing_util::MakePointSet;

// Ascending brute-force distances from s[query] to every other point.
std::vector<double> BruteForceKnn(const PointSet& s, std::size_t query,
                                  std::size_t k) {
  std::vector<double> dists;
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (j == query) continue;
    dists.push_back(Distance(s[query], s[j]));
  }
  std::sort(dists.begin(), dists.end());
  dists.resize(std::min(k, dists.size()));
  return dists;
}

void ExpectMatchesBruteForce(const PointSet& s, const GridDomain& domain,
                             std::size_t k) {
  ASSERT_OK_AND_ASSIGN(SpatialGrid grid, SpatialGrid::Build(s, domain, k));
  SpatialGrid::Workspace ws;
  std::vector<double> got;
  for (std::size_t i = 0; i < s.size(); ++i) {
    grid.KnnDistances(i, k, ws, got);
    const std::vector<double> want = BruteForceKnn(s, i, k);
    ASSERT_EQ(got.size(), want.size()) << "query=" << i << " k=" << k;
    for (std::size_t j = 0; j < want.size(); ++j) {
      ASSERT_EQ(got[j], want[j])
          << "query=" << i << " k=" << k << " rank=" << j;
    }
  }
}

TEST(SpatialGridTest, RingSearchMatchesBruteForceAcrossShapes) {
  Rng rng(101);
  for (const std::size_t d : {1u, 2u, 3u, 8u}) {
    const GridDomain domain(1u << 10, d);
    for (const std::size_t n : {2u, 33u, 257u}) {
      PointSet s = testing_util::UniformCube(rng, n, d);
      domain.SnapAll(s);
      for (const std::size_t k : {std::size_t{1}, std::size_t{5}, n - 1}) {
        ExpectMatchesBruteForce(s, domain, k);
      }
    }
  }
}

TEST(SpatialGridTest, DuplicateHeavyPointsCountAsNeighbors) {
  // Coordinates drawn from three levels only: most points are exact
  // duplicates, so many zero distances must survive self-exclusion.
  Rng rng(102);
  const std::size_t d = 2;
  const GridDomain domain(2, d);  // levels=2: snapping to {0, 1}.
  PointSet s = testing_util::UniformCube(rng, 120, d);
  domain.SnapAll(s);
  for (const std::size_t k : {1u, 10u, 119u}) {
    ExpectMatchesBruteForce(s, domain, k);
  }
}

TEST(SpatialGridTest, AllPointsIdentical) {
  const GridDomain domain(16, 2);
  PointSet s(2);
  const std::vector<double> p = {0.5, 0.5};
  for (int i = 0; i < 50; ++i) s.Add(p);
  ASSERT_OK_AND_ASSIGN(SpatialGrid grid, SpatialGrid::Build(s, domain, 49));
  SpatialGrid::Workspace ws;
  std::vector<double> out;
  grid.KnnDistances(7, 49, ws, out);
  ASSERT_EQ(out.size(), 49u);
  for (const double v : out) EXPECT_EQ(v, 0.0);
}

TEST(SpatialGridTest, BoundaryPointsStayInTheLastCell) {
  // Exact cube corners (coordinate 1.0 lands on the last cell's far edge).
  const GridDomain domain(1u << 10, 2);
  const PointSet s = MakePointSet(
      2, {0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.5, 0.5, 1.0, 1.0});
  for (const std::size_t k : {1u, 3u, 5u}) {
    ExpectMatchesBruteForce(s, domain, k);
  }
}

TEST(SpatialGridTest, DegenerateHighDimensionFallsBackToFullScan) {
  Rng rng(103);
  const std::size_t d = 32;
  const std::size_t k = 20;
  const GridDomain domain(1u << 10, d);
  PointSet s = testing_util::UniformCube(rng, 150, d);
  domain.SnapAll(s);
  // The exact geometry at high d collapses to one cell and every query scans
  // the full live prefix (kAuto resolves to exact too; the explicit request
  // also pins the degenerate shape if the heuristics ever move).
  ASSERT_OK_AND_ASSIGN(
      SpatialGrid grid,
      SpatialGrid::Build(s, domain, k, IndexGeometry::kExact));
  EXPECT_EQ(grid.cells_per_axis(), 1u);
  ExpectMatchesBruteForce(s, domain, k);

  // The one-cell batch runs the blocked dense pass: rows must equal the
  // per-query path bit for bit, sorted and unsorted (as multisets), at any
  // thread count, and for explicit query lists after a removal.
  SpatialGrid::Workspace ws;
  std::vector<double> row;
  for (const bool sorted : {true, false}) {
    std::vector<double> batch(s.size() * k);
    grid.BatchKnnDistances(k, batch, nullptr, sorted);
    for (std::size_t i = 0; i < s.size(); ++i) {
      grid.KnnDistances(i, k, ws, row, sorted);
      for (std::size_t j = 0; j < k; ++j) {
        ASSERT_EQ(batch[i * k + j], row[j])
            << "sorted=" << sorted << " i=" << i << " j=" << j;
      }
    }
    ThreadPool pool(4);
    std::vector<double> parallel(s.size() * k);
    grid.BatchKnnDistances(k, parallel, &pool, sorted);
    EXPECT_EQ(batch, parallel) << "sorted=" << sorted;
  }

  grid.Remove(17);
  std::vector<std::uint32_t> queries;
  for (std::uint32_t i = 0; i < s.size(); ++i) {
    if (i != 17) queries.push_back(i);
  }
  std::vector<double> batch_for(queries.size() * k);
  grid.BatchKnnDistancesFor(queries, k, batch_for, nullptr);
  for (std::size_t r = 0; r < queries.size(); ++r) {
    grid.KnnDistances(queries[r], k, ws, row);
    for (std::size_t j = 0; j < k; ++j) {
      ASSERT_EQ(batch_for[r * k + j], row[j]) << "r=" << r << " j=" << j;
    }
  }
}

TEST(SpatialGridTest, KLargerThanNMinusOneIsClamped) {
  const GridDomain domain(16, 1);
  const PointSet s = MakePointSet(1, {0.25, 0.75});
  ASSERT_OK_AND_ASSIGN(SpatialGrid grid, SpatialGrid::Build(s, domain, 10));
  SpatialGrid::Workspace ws;
  std::vector<double> out;
  grid.KnnDistances(0, 10, ws, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Distance(s[0], s[1]));
  grid.KnnDistances(0, 0, ws, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialGridTest, UnsortedModeReturnsTheSameMultiset) {
  Rng rng(104);
  const GridDomain domain(1u << 10, 3);
  PointSet s = testing_util::UniformCube(rng, 200, 3);
  domain.SnapAll(s);
  ASSERT_OK_AND_ASSIGN(SpatialGrid grid, SpatialGrid::Build(s, domain, 17));
  SpatialGrid::Workspace ws;
  std::vector<double> unsorted;
  for (std::size_t i = 0; i < s.size(); i += 13) {
    grid.KnnDistances(i, 17, ws, unsorted, /*sorted=*/false);
    std::sort(unsorted.begin(), unsorted.end());
    const std::vector<double> want = BruteForceKnn(s, i, 17);
    ASSERT_EQ(unsorted.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      ASSERT_EQ(unsorted[j], want[j]) << "query=" << i << " rank=" << j;
    }
  }
}

TEST(SpatialGridTest, BatchBitIdenticalAcrossThreadCounts) {
  Rng rng(105);
  const GridDomain domain(1u << 12, 2);
  PointSet s = testing_util::UniformCube(rng, 500, 2);
  domain.SnapAll(s);
  const std::size_t k = 31;
  ASSERT_OK_AND_ASSIGN(SpatialGrid grid, SpatialGrid::Build(s, domain, k));
  std::vector<double> serial(s.size() * k);
  grid.BatchKnnDistances(k, serial, nullptr);

  // The batch must equal the per-query path and be independent of threads.
  SpatialGrid::Workspace ws;
  std::vector<double> row;
  for (std::size_t i = 0; i < s.size(); ++i) {
    grid.KnnDistances(i, k, ws, row);
    for (std::size_t j = 0; j < k; ++j) {
      ASSERT_EQ(serial[i * k + j], row[j]) << "i=" << i << " j=" << j;
    }
  }
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(s.size() * k);
    grid.BatchKnnDistances(k, parallel, &pool);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace dpcluster
