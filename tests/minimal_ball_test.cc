// Tests for the non-private minimal-ball substrate (Section 3, facts 1-3).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/geo/minimal_ball.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using testing_util::MakePointSet;

TEST(SmallestInterval1DTest, ExactOnHandExample) {
  const PointSet s = MakePointSet(1, {0.0, 0.1, 0.2, 0.9, 1.0});
  ASSERT_OK_AND_ASSIGN(Ball b, SmallestInterval1D(s, 3));
  EXPECT_NEAR(b.radius, 0.1, 1e-12);
  EXPECT_NEAR(b.center[0], 0.1, 1e-12);
}

TEST(SmallestInterval1DTest, FullSetAndSingleton) {
  const PointSet s = MakePointSet(1, {3.0, 1.0, 2.0});
  ASSERT_OK_AND_ASSIGN(Ball all, SmallestInterval1D(s, 3));
  EXPECT_NEAR(all.radius, 1.0, 1e-12);
  ASSERT_OK_AND_ASSIGN(Ball one, SmallestInterval1D(s, 1));
  EXPECT_NEAR(one.radius, 0.0, 1e-12);
}

TEST(SmallestInterval1DTest, RejectsBadArgs) {
  const PointSet s1 = MakePointSet(1, {0.0});
  EXPECT_EQ(SmallestInterval1D(s1, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SmallestInterval1D(s1, 2).status().code(),
            StatusCode::kInvalidArgument);
  const PointSet s2 = MakePointSet(2, {0.0, 0.0});
  EXPECT_EQ(SmallestInterval1D(s2, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SmallestInterval1DTest, MatchesBruteForceOnRandomData) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const PointSet s = testing_util::UniformCube(rng, 40, 1);
    const std::size_t t = 2 + rng.NextUint64(30);
    ASSERT_OK_AND_ASSIGN(Ball fast, SmallestInterval1D(s, t));
    // Brute force: all O(n^2) intervals defined by point pairs.
    double best = 1e18;
    for (std::size_t i = 0; i < s.size(); ++i) {
      for (std::size_t j = 0; j < s.size(); ++j) {
        const double lo = s[i][0];
        const double hi = s[j][0];
        if (hi < lo) continue;
        std::size_t count = 0;
        for (std::size_t q = 0; q < s.size(); ++q) {
          if (s[q][0] >= lo - 1e-15 && s[q][0] <= hi + 1e-15) ++count;
        }
        if (count >= t) best = std::min(best, (hi - lo) / 2.0);
      }
    }
    EXPECT_NEAR(fast.radius, best, 1e-9);
  }
}

TEST(TwoApproxTest, CapturesTPoints) {
  Rng rng(2);
  const PointSet s = testing_util::UniformCube(rng, 60, 3);
  for (std::size_t t : {1u, 10u, 30u, 60u}) {
    ASSERT_OK_AND_ASSIGN(Ball b, TwoApproxSmallestBall(s, t));
    EXPECT_GE(CountInBall(s, b), t);
  }
}

TEST(TwoApproxTest, WithinFactorTwoOfGridOptimum) {
  Rng rng(3);
  const GridDomain domain(9, 2);
  for (int trial = 0; trial < 10; ++trial) {
    PointSet s = testing_util::UniformCube(rng, 25, 2);
    domain.SnapAll(s);
    const std::size_t t = 5 + rng.NextUint64(15);
    ASSERT_OK_AND_ASSIGN(Ball two, TwoApproxSmallestBall(s, t));
    ASSERT_OK_AND_ASSIGN(Ball grid,
                         GridRestrictedSmallestBall(s, t, domain, 10000));
    // Grid centers include strong candidates; the classical bound says the
    // input-centered ball is at most twice the true optimum, and the true
    // optimum is at most the grid optimum.
    EXPECT_LE(two.radius, 2.0 * grid.radius + 1e-9);
  }
}

TEST(GridRestrictedTest, ExactOnTinyInstance) {
  // Points at 0 and 1; t = 2: best grid center is 0.5 with radius 0.5.
  const GridDomain domain(3, 1);  // Levels {0, .5, 1}.
  const PointSet s = MakePointSet(1, {0.0, 1.0});
  ASSERT_OK_AND_ASSIGN(Ball b, GridRestrictedSmallestBall(s, 2, domain, 100));
  EXPECT_NEAR(b.radius, 0.5, 1e-12);
  EXPECT_NEAR(b.center[0], 0.5, 1e-12);
}

TEST(GridRestrictedTest, RefusesHugeGrids) {
  const GridDomain domain(1024, 3);
  const PointSet s = MakePointSet(3, {0.0, 0.0, 0.0});
  EXPECT_EQ(GridRestrictedSmallestBall(s, 1, domain, 1000).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(OptRadiusLowerBoundTest, SandwichesTrueOptimum1D) {
  const PointSet s = MakePointSet(1, {0.0, 0.2, 0.25, 0.3, 1.0});
  ASSERT_OK_AND_ASSIGN(double lb, OptRadiusLowerBound(s, 3));
  EXPECT_NEAR(lb, 0.05, 1e-12);  // Exact in 1D.
}

TEST(OptRadiusLowerBoundTest, LowerBoundsTwoApprox) {
  Rng rng(4);
  const PointSet s = testing_util::UniformCube(rng, 50, 4);
  const std::size_t t = 20;
  ASSERT_OK_AND_ASSIGN(double lb, OptRadiusLowerBound(s, t));
  ASSERT_OK_AND_ASSIGN(Ball two, TwoApproxSmallestBall(s, t));
  EXPECT_LE(lb, two.radius + 1e-12);
  EXPECT_GE(lb, two.radius / 2.0 - 1e-12);
}

}  // namespace
}  // namespace dpcluster
