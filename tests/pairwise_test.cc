// Tests for PairwiseDistances and the capped averaged count L(r, S) —
// including the paper's central sensitivity-2 property (Lemma 4.5's core).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/pairwise.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using testing_util::MakePointSet;

// Direct O(n^2) evaluation of L(r, S) from the definition.
double BruteForceL(const PointSet& s, double r, std::size_t t) {
  std::vector<double> counts(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    counts[i] = static_cast<double>(
        std::min<std::size_t>(CountWithin(s, s[i], r), t));
  }
  std::sort(counts.rbegin(), counts.rend());
  double sum = 0.0;
  for (std::size_t i = 0; i < t; ++i) sum += counts[i];
  return sum / static_cast<double>(t);
}

TEST(BranchlessUpperBoundTest, MatchesStdUpperBound) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = rng.NextUint64(40);
    std::vector<float> row(n);
    for (float& v : row) v = static_cast<float>(rng.NextDouble());
    std::sort(row.begin(), row.end());
    for (int q = 0; q < 20; ++q) {
      const float bound = static_cast<float>(rng.NextDouble() * 1.2 - 0.1);
      const auto expected = static_cast<std::size_t>(
          std::upper_bound(row.begin(), row.end(), bound) - row.begin());
      EXPECT_EQ(BranchlessUpperBound(row, bound), expected)
          << "n=" << n << " bound=" << bound;
    }
    // Exact-element bounds exercise the <= edge.
    for (const float v : row) {
      const auto expected = static_cast<std::size_t>(
          std::upper_bound(row.begin(), row.end(), v) - row.begin());
      EXPECT_EQ(BranchlessUpperBound(row, v), expected);
    }
  }
  EXPECT_EQ(BranchlessUpperBound({}, 1.0f), 0u);
}

TEST(PairwiseDistancesTest, RespectsCap) {
  Rng rng(1);
  const PointSet s = testing_util::UniformCube(rng, 10, 2);
  EXPECT_EQ(PairwiseDistances::Compute(s, 5).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_OK(PairwiseDistances::Compute(s, 10).status());
}

TEST(PairwiseDistancesTest, CountWithinMatchesBruteForce) {
  Rng rng(2);
  const PointSet s = testing_util::UniformCube(rng, 50, 3);
  ASSERT_OK_AND_ASSIGN(PairwiseDistances pd, PairwiseDistances::Compute(s, 100));
  for (double r : {0.0, 0.1, 0.3, 0.7, 2.0}) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(pd.CountWithin(i, r), CountWithin(s, s[i], r))
          << "i=" << i << " r=" << r;
    }
  }
}

TEST(PairwiseDistancesTest, CountIncludesSelfAndDuplicates) {
  const PointSet s = MakePointSet(1, {0.5, 0.5, 0.5, 0.9});
  ASSERT_OK_AND_ASSIGN(PairwiseDistances pd, PairwiseDistances::Compute(s, 10));
  EXPECT_EQ(pd.CountWithin(0, 0.0), 3u);
  EXPECT_EQ(pd.CountWithin(3, 0.0), 1u);
}

TEST(PairwiseDistancesTest, CappedTopAverageMatchesDefinition) {
  Rng rng(3);
  const PointSet s = testing_util::UniformCube(rng, 60, 2);
  ASSERT_OK_AND_ASSIGN(PairwiseDistances pd, PairwiseDistances::Compute(s, 100));
  for (std::size_t t : {1u, 5u, 20u, 60u}) {
    for (double r : {0.0, 0.05, 0.2, 0.5, 1.5}) {
      EXPECT_NEAR(pd.CappedTopAverage(r, t), BruteForceL(s, r, t), 1e-9)
          << "t=" << t << " r=" << r;
    }
  }
}

TEST(PairwiseDistancesTest, LIsMonotoneInRadius) {
  Rng rng(4);
  const PointSet s = testing_util::UniformCube(rng, 40, 2);
  ASSERT_OK_AND_ASSIGN(PairwiseDistances pd, PairwiseDistances::Compute(s, 100));
  const std::size_t t = 10;
  double prev = -1.0;
  for (double r = 0.0; r <= 1.5; r += 0.05) {
    const double l = pd.CappedTopAverage(r, t);
    EXPECT_GE(l, prev);
    prev = l;
  }
}

TEST(PairwiseDistancesTest, LBoundedByTAndReachesT) {
  Rng rng(5);
  const PointSet s = testing_util::UniformCube(rng, 30, 2);
  ASSERT_OK_AND_ASSIGN(PairwiseDistances pd, PairwiseDistances::Compute(s, 100));
  const std::size_t t = 12;
  EXPECT_LE(pd.CappedTopAverage(0.01, t), static_cast<double>(t));
  // At the cube diameter every ball holds all points.
  EXPECT_DOUBLE_EQ(pd.CappedTopAverage(2.0, t), static_cast<double>(t));
}

// The property Lemma 4.5 rests on: |L(r, S) - L(r, S')| <= 2 for neighboring
// datasets (one row replaced).
TEST(PairwiseDistancesTest, LSensitivityAtMostTwoUnderReplacement) {
  Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    PointSet s = testing_util::UniformCube(rng, 30, 2);
    const std::size_t t = 1 + rng.NextUint64(29);
    ASSERT_OK_AND_ASSIGN(PairwiseDistances pd0, PairwiseDistances::Compute(s, 64));

    PointSet s2 = s;
    const std::size_t victim = rng.NextUint64(s.size());
    std::vector<double> replacement = {rng.NextDouble(), rng.NextDouble()};
    s2.ReplaceRow(victim, replacement);
    ASSERT_OK_AND_ASSIGN(PairwiseDistances pd1, PairwiseDistances::Compute(s2, 64));

    for (double r : {0.0, 0.1, 0.25, 0.6, 1.2}) {
      const double l0 = pd0.CappedTopAverage(r, t);
      const double l1 = pd1.CappedTopAverage(r, t);
      EXPECT_LE(std::abs(l0 - l1), 2.0 + 1e-9)
          << "trial=" << trial << " r=" << r << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace dpcluster
