// Tests for the daemon's JSON layer and wire protocol (service/json.h,
// service/protocol.h): strict parsing, lexeme-preserving numbers, the
// byte-exact round-trip contract Encode(Parse(Encode(w))) == Encode(w) over
// every wire-exposed Request field, and the structured error replies for
// malformed inputs (truncated body, unknown algorithm, negative epsilon).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "dpcluster/service/json.h"
#include "dpcluster/service/protocol.h"
#include "dpcluster/service/service.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// --- JsonValue ------------------------------------------------------------

TEST(JsonTest, ParsesScalarsAndContainers) {
  ASSERT_OK_AND_ASSIGN(JsonValue v,
                       JsonValue::Parse(R"({"a": [1, 2.5, -3e-2], "b": )"
                                        R"("x\ny", "c": true, "d": null})"));
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].AsDouble(), 2.5);
  EXPECT_EQ(v.Find("b")->AsString(), "x\ny");
  EXPECT_TRUE(v.Find("c")->AsBool());
  EXPECT_TRUE(v.Find("d")->is_null());
}

TEST(JsonTest, NumberLexemesSurviveParseAndEncode) {
  // Values no double can hold (u64 seeds) and spellings a double would
  // reformat ("1e-9" vs 1e-09, "0.10") must re-encode byte-identically.
  const std::string text =
      R"({"seed": 18446744073709551615, "delta": 1e-9, "x": 0.10})";
  ASSERT_OK_AND_ASSIGN(JsonValue v, JsonValue::Parse(text));
  EXPECT_EQ(v.Encode(),
            R"({"seed":18446744073709551615,"delta":1e-9,"x":0.10})");
  ASSERT_OK_AND_ASSIGN(const std::uint64_t seed, v.Find("seed")->AsU64());
  EXPECT_EQ(seed, 18446744073709551615ull);
}

TEST(JsonTest, AsU64RejectsNonIntegers) {
  ASSERT_OK_AND_ASSIGN(JsonValue v,
                       JsonValue::Parse(R"([1.5, -2, 18446744073709551616])"));
  for (const JsonValue& item : v.items()) {
    EXPECT_FALSE(item.AsU64().ok());
  }
}

TEST(JsonTest, StrictParserRejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":1,}", "nul", "01", "+1", "1.", ".5",
        "\"unterminated", "{\"a\":1}extra", "{\"a\":1 \"b\":2}",
        "{\"dup\":1,\"dup\":2}", "[1 2]", "\"bad\\q\"", "\"\\u12\"",
        "'single'"}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << bad;
  }
}

TEST(JsonTest, DepthCapStopsAdversarialNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // 100 opens with closes is still too deep; 10 is fine.
  std::string ok = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  ASSERT_OK_AND_ASSIGN(JsonValue v, JsonValue::Parse(R"("\u00e9\ud83d\ude00")"));
  EXPECT_EQ(v.AsString(), "\xc3\xa9\xf0\x9f\x98\x80");  // é, 😀
}

// --- Wire round trip ------------------------------------------------------

/// A wire request exercising every wire-exposed field with non-default
/// values (seed above 2^53 so double round-tripping would corrupt it).
WireRequest FullWireRequest() {
  WireRequest wire;
  wire.tenant = "alice";
  wire.dataset = "sensors/eu-west";
  wire.seed = 9007199254740993ull;  // 2^53 + 1
  wire.snap = true;
  Request& request = wire.request;
  request.algorithm = "k_cluster";
  request.data = PointSet(2, {0.125, 0.25, 0.5, 0.75, 0.0625, 1.0});
  request.domain = GridDomain(4096, 2, 2.0);
  request.budget = {1.5, 1e-9};
  request.beta = 0.05;
  request.t = 2;
  request.k = 3;
  request.inlier_fraction = 0.85;
  request.alpha = 0.25;
  request.block_size = 7;
  request.num_threads = 4;
  request.label = "nightly-sweep";
  request.tuning.radius_budget_fraction = 0.4;
  request.tuning.subsample_large_inputs = true;
  request.tuning.subsample_grid_cap_factor = 12.5;
  request.tuning.profile_index = ProfileIndex::kGrid;
  request.tuning.index_geometry = IndexGeometry::kProjected;
  request.tuning.max_jl_dim = 9;
  request.tuning.projection_seed = 123456789012345ull;
  request.tuning.refine_fraction = 0.3;
  request.tuning.refine_one_cluster = true;
  request.tuning.advanced_composition = true;
  request.tuning.coreset = true;
  request.tuning.coreset_min_points = 4096;
  request.tuning.coreset_target_size = 333;
  request.tuning.stream_compact_fraction = 0.125;
  request.tuning.coreset_staleness_fraction = 0.75;
  request.tuning.inflation = 1.5;
  request.tuning.max_grid_centers = 99999;
  return wire;
}

TEST(WireProtocolTest, EncodeParseEncodeIsByteExact) {
  const WireRequest wire = FullWireRequest();
  const std::string encoded = WireRequestToJson(wire).Encode();
  ASSERT_OK_AND_ASSIGN(const WireRequest reparsed, ParseWireRequest(encoded));
  EXPECT_EQ(WireRequestToJson(reparsed).Encode(), encoded);
}

TEST(WireProtocolTest, EveryFieldSurvivesTheRoundTrip) {
  const WireRequest wire = FullWireRequest();
  ASSERT_OK_AND_ASSIGN(const WireRequest back,
                       ParseWireRequest(WireRequestToJson(wire).Encode()));
  EXPECT_EQ(back.tenant, "alice");
  EXPECT_EQ(back.dataset, "sensors/eu-west");
  EXPECT_EQ(back.seed, 9007199254740993ull);
  EXPECT_TRUE(back.snap);
  const Request& r = back.request;
  EXPECT_EQ(r.algorithm, "k_cluster");
  ASSERT_EQ(r.data.size(), 3u);
  ASSERT_EQ(r.data.dim(), 2u);
  EXPECT_EQ(r.data[2][1], 1.0);
  ASSERT_TRUE(r.domain.has_value());
  EXPECT_EQ(r.domain->levels(), 4096u);
  EXPECT_EQ(r.domain->dim(), 2u);
  EXPECT_DOUBLE_EQ(r.domain->axis_length(), 2.0);
  EXPECT_DOUBLE_EQ(r.budget.epsilon, 1.5);
  EXPECT_DOUBLE_EQ(r.budget.delta, 1e-9);
  EXPECT_DOUBLE_EQ(r.beta, 0.05);
  EXPECT_EQ(r.t, 2u);
  EXPECT_EQ(r.k, 3u);
  EXPECT_DOUBLE_EQ(r.inlier_fraction, 0.85);
  EXPECT_DOUBLE_EQ(r.alpha, 0.25);
  EXPECT_EQ(r.block_size, 7u);
  EXPECT_EQ(r.num_threads, 4u);
  EXPECT_EQ(r.label, "nightly-sweep");
  EXPECT_DOUBLE_EQ(r.tuning.radius_budget_fraction, 0.4);
  EXPECT_TRUE(r.tuning.subsample_large_inputs);
  EXPECT_DOUBLE_EQ(r.tuning.subsample_grid_cap_factor, 12.5);
  EXPECT_EQ(r.tuning.profile_index, ProfileIndex::kGrid);
  EXPECT_EQ(r.tuning.index_geometry, IndexGeometry::kProjected);
  EXPECT_EQ(r.tuning.max_jl_dim, 9u);
  EXPECT_EQ(r.tuning.projection_seed, 123456789012345ull);
  EXPECT_DOUBLE_EQ(r.tuning.refine_fraction, 0.3);
  EXPECT_TRUE(r.tuning.refine_one_cluster);
  EXPECT_TRUE(r.tuning.advanced_composition);
  EXPECT_TRUE(r.tuning.coreset);
  EXPECT_EQ(r.tuning.coreset_min_points, 4096u);
  EXPECT_EQ(r.tuning.coreset_target_size, 333u);
  EXPECT_DOUBLE_EQ(r.tuning.stream_compact_fraction, 0.125);
  EXPECT_DOUBLE_EQ(r.tuning.coreset_staleness_fraction, 0.75);
  EXPECT_DOUBLE_EQ(r.tuning.inflation, 1.5);
  EXPECT_EQ(r.tuning.max_grid_centers, 99999u);
}

TEST(WireProtocolTest, MinimalRequestGetsDefaults) {
  ASSERT_OK_AND_ASSIGN(
      const WireRequest wire,
      ParseWireRequest(R"({"dataset": "d", "algorithm": "one_cluster",)"
                       R"( "points": [[0.5]]})"));
  EXPECT_EQ(wire.tenant, "public");
  EXPECT_EQ(wire.seed, 0u);
  EXPECT_FALSE(wire.snap);
  EXPECT_FALSE(wire.request.domain.has_value());
  EXPECT_DOUBLE_EQ(wire.request.budget.epsilon, 1.0);
  EXPECT_EQ(wire.request.k, 2u);
}

TEST(WireProtocolTest, ParseSnapDoesNotMutatePoints) {
  // `snap` is a flag for the service, not the codec: parsing must hand back
  // the client's exact coordinates (the round-trip contract depends on it).
  ASSERT_OK_AND_ASSIGN(
      const WireRequest wire,
      ParseWireRequest(R"({"dataset": "d", "algorithm": "one_cluster",)"
                       R"( "points": [[0.333]], "levels": 4, "snap": true})"));
  EXPECT_TRUE(wire.snap);
  EXPECT_DOUBLE_EQ(wire.request.data[0][0], 0.333);
}

TEST(WireProtocolTest, RejectsMalformedWireRequests) {
  const WireRequest full = FullWireRequest();
  const std::string good = WireRequestToJson(full).Encode();
  // Truncated body (cut mid-document).
  EXPECT_FALSE(ParseWireRequest(good.substr(0, good.size() / 2)).ok());
  // Unknown and misshapen fields.
  for (const char* bad : {
           R"({"dataset": "d", "algorithm": "a"})",              // no points
           R"({"dataset": "d", "points": [[1]]})",               // no algorithm
           R"({"algorithm": "a", "points": [[1]]})",             // no dataset
           R"({"dataset": "d", "algorithm": "a", "points": []})",
           R"({"dataset": "d", "algorithm": "a", "points": [[1],[1,2]]})",
           R"({"dataset": "d", "algorithm": "a", "points": [[1]], "bogus": 1})",
           R"({"dataset": "d", "algorithm": "a", "points": [[1]], "t": -1})",
           R"({"dataset": "d", "algorithm": "a", "points": [[1]], "t": 1.5})",
           R"({"dataset": "d", "algorithm": "a", "points": [["x"]]})",
           R"({"dataset": "d", "algorithm": "a", "points": [[1]], "snap": true})",
           R"({"dataset": "d", "algorithm": "a", "points": [[1]],)"
           R"( "tuning": {"bogus_knob": 1}})",
           R"({"dataset": "d", "algorithm": "a", "points": [[1]],)"
           R"( "tuning": {"profile_index": "never"}})",
       }) {
    EXPECT_FALSE(ParseWireRequest(bad).ok()) << bad;
  }
}

// --- Stream wire format ---------------------------------------------------

TEST(WireProtocolTest, StreamSolveRoundTripsAndOwnsNoGeometry) {
  WireRequest wire;
  wire.dataset = "sensors/live";
  wire.seed = 42;
  wire.stream = true;
  wire.request.algorithm = "one_cluster";
  wire.request.t = 96;
  wire.request.budget = {2.0, 1e-9};
  const std::string encoded = WireRequestToJson(wire).Encode();
  ASSERT_OK_AND_ASSIGN(const WireRequest back, ParseWireRequest(encoded));
  EXPECT_TRUE(back.stream);
  EXPECT_EQ(back.dataset, "sensors/live");
  EXPECT_EQ(back.request.t, 96u);
  EXPECT_TRUE(back.request.data.empty());
  EXPECT_FALSE(back.request.domain.has_value());
  // Exact inverse: the encoder omits "points"/"levels" for stream solves.
  EXPECT_EQ(WireRequestToJson(back).Encode(), encoded);

  // A stream solve must not also carry client-side geometry.
  const std::string base =
      R"({"dataset": "d", "algorithm": "a", "stream": true)";
  for (const char* bad : {
           R"(, "points": [[1]]})",  // stream + points
           R"(, "levels": 1024})",   // stream + levels
           R"(, "snap": true})",     // stream + snap
       }) {
    EXPECT_FALSE(ParseWireRequest(base + std::string(bad)).ok()) << bad;
  }
}

TEST(WireProtocolTest, ParseStreamAppendIsStrict) {
  ASSERT_OK_AND_ASSIGN(
      const StreamRequest append,
      ParseStreamAppend(
          R"({"dataset": "s", "points": [[0.25, 0.5], [0.75, 1.0]],)"
          R"( "levels": 1024, "axis": 2.0, "snap": true,)"
          R"( "tuning": {"stream_compact_fraction": 0.1}})"));
  EXPECT_EQ(append.dataset, "s");
  ASSERT_EQ(append.points.size(), 2u);
  EXPECT_EQ(append.points.dim(), 2u);
  EXPECT_EQ(append.levels, 1024u);
  EXPECT_DOUBLE_EQ(append.axis, 2.0);
  EXPECT_TRUE(append.snap);
  EXPECT_DOUBLE_EQ(append.tuning.stream_compact_fraction, 0.1);

  for (const char* bad : {
           R"({"points": [[1]]})",                       // no dataset
           R"({"dataset": "s"})",                        // no points
           R"({"dataset": "s", "points": [[1],[1,2]]})", // ragged rows
           R"({"dataset": "s", "points": [[1]], "levels": 1})",
           R"({"dataset": "s", "points": [[1]], "snap": true})",  // no domain
           R"({"dataset": "s", "points": [[1]], "count": 1})",    // expire key
           R"({"dataset": "s", "points": [[1]], "bogus": 1})",
       }) {
    EXPECT_FALSE(ParseStreamAppend(bad).ok()) << bad;
  }
}

TEST(WireProtocolTest, ParseStreamExpireIsStrict) {
  ASSERT_OK_AND_ASSIGN(
      const StreamRequest by_count,
      ParseStreamExpire(R"({"dataset": "s", "count": 12})"));
  EXPECT_EQ(by_count.expire_count, 12u);
  ASSERT_OK_AND_ASSIGN(
      const StreamRequest by_ids,
      ParseStreamExpire(R"({"dataset": "s", "ids": [3, 1, 2]})"));
  ASSERT_EQ(by_ids.expire_ids.size(), 3u);
  EXPECT_EQ(by_ids.expire_ids[0], 3u);

  for (const char* bad : {
           R"({"dataset": "s"})",                        // neither selector
           R"({"dataset": "s", "count": 1, "ids": [0]})",// both selectors
           R"({"dataset": "s", "count": 0})",
           R"({"dataset": "s", "ids": []})",
           R"({"dataset": "s", "ids": [4294967296]})",   // > uint32
           R"({"dataset": "s", "points": [[1]]})",       // append key
       }) {
    EXPECT_FALSE(ParseStreamExpire(bad).ok()) << bad;
  }
}

// --- Error vocabulary -----------------------------------------------------

TEST(WireProtocolTest, ErrorCodesMapToStableNamesAndHttpStatuses) {
  EXPECT_STREQ(ServiceErrorCodeName(ServiceErrorCode::kBudgetExhausted),
               "BudgetExhausted");
  EXPECT_EQ(HttpStatusOf(ServiceErrorCode::kBudgetExhausted), 429);
  EXPECT_EQ(HttpStatusOf(ServiceErrorCode::kParseError), 400);
  EXPECT_EQ(HttpStatusOf(ServiceErrorCode::kUnknownAlgorithm), 404);
  EXPECT_EQ(HttpStatusOf(ServiceErrorCode::kQueueFull), 503);
  EXPECT_EQ(HttpStatusOf(ServiceErrorCode::kNoPrivateAnswer), 422);
  EXPECT_EQ(ServiceErrorFromStatus(Status::InvalidArgument("x")),
            ServiceErrorCode::kInvalidRequest);
  EXPECT_EQ(ServiceErrorFromStatus(Status::NotFound("x")),
            ServiceErrorCode::kUnknownAlgorithm);
  const JsonValue error =
      ErrorToJson(ServiceErrorCode::kQueueFull, "try later");
  EXPECT_FALSE(error.Find("ok")->AsBool());
  EXPECT_EQ(error.Find("error")->Find("code")->AsString(), "QueueFull");
}

// --- Service-level malformed-input pinning (no sockets) -------------------

TEST(ServiceErrorTest, TruncatedBodyIsParseErrorAndChargesNothing) {
  ClusterService service;
  const ServiceReply reply =
      service.Handle("POST", "/v1/solve", R"({"dataset": "d", "alg)");
  EXPECT_EQ(reply.http_status, 400);
  ASSERT_OK_AND_ASSIGN(JsonValue body, JsonValue::Parse(reply.body));
  EXPECT_EQ(body.Find("error")->Find("code")->AsString(), "ParseError");
  EXPECT_DOUBLE_EQ(service.SpentBy("public", "d").epsilon, 0.0);
}

TEST(ServiceErrorTest, UnknownAlgorithmIs404AndChargesNothing) {
  ClusterService service;
  const ServiceReply reply = service.Handle(
      "POST", "/v1/solve",
      R"({"dataset": "d", "algorithm": "no_such_algo", "points": [[0.5]]})");
  EXPECT_EQ(reply.http_status, 404);
  ASSERT_OK_AND_ASSIGN(JsonValue body, JsonValue::Parse(reply.body));
  EXPECT_EQ(body.Find("error")->Find("code")->AsString(), "UnknownAlgorithm");
  EXPECT_DOUBLE_EQ(service.SpentBy("public", "d").epsilon, 0.0);
}

TEST(ServiceErrorTest, NegativeEpsilonIsInvalidRequestAndChargesNothing) {
  ClusterService service;
  const ServiceReply reply = service.Handle(
      "POST", "/v1/solve",
      R"({"dataset": "d", "algorithm": "nonprivate", "points": [[0.5]],)"
      R"( "epsilon": -1.0, "t": 1})");
  EXPECT_EQ(reply.http_status, 400);
  ASSERT_OK_AND_ASSIGN(JsonValue body, JsonValue::Parse(reply.body));
  EXPECT_EQ(body.Find("error")->Find("code")->AsString(), "InvalidRequest");
  EXPECT_DOUBLE_EQ(service.SpentBy("public", "d").epsilon, 0.0);
}

}  // namespace
}  // namespace dpcluster
