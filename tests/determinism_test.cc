// The hard constraint of the parallel runtime: released outputs are
// bit-identical at any thread count. Each pipeline runs with num_threads in
// {1, 2, 8} from identical Rng seeds; every released field must match the
// serial run exactly (==, not near) — threads only execute deterministic
// numeric work, all randomness stays on the caller's single Rng stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "dpcluster/core/good_center.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/la/jl_transform.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// Box-Muller from the test's own Rng (keeps this file free of the library's
// sampling internals).
double SampleGaussianForTest(Rng& rng) {
  const double u = rng.NextDoubleOpenZero();
  const double v = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * 3.14159265358979323846 * v);
}

ClusterWorkload Workload(std::uint64_t seed) {
  Rng rng(seed);
  PlantedClusterSpec spec;
  spec.n = 600;
  spec.t = 200;
  spec.dim = 3;
  spec.levels = 1u << 10;
  spec.cluster_radius = 0.03;
  return MakePlantedCluster(rng, spec);
}

TEST(DeterminismTest, GoodRadiusBitIdenticalAcrossThreadCounts) {
  const ClusterWorkload w = Workload(11);
  for (const auto engine : {GoodRadiusOptions::Engine::kRecConcave,
                            GoodRadiusOptions::Engine::kSparseVector}) {
    GoodRadiusOptions options;
    options.params = {4.0, 1e-9};
    options.beta = 0.1;
    options.engine = engine;

    options.num_threads = 1;
    options.profile_index = ProfileIndex::kExact;
    Rng rng_serial(77);
    ASSERT_OK_AND_ASSIGN(GoodRadiusResult serial,
                         GoodRadius(rng_serial, w.points, w.t, w.domain, options));

    // The serial exact sweep is the reference: every (event generator,
    // thread count) combination must release the same bits — the spatial
    // grid's t-NN pruning is lossless, not an approximation.
    for (const auto profile_index :
         {ProfileIndex::kExact, ProfileIndex::kGrid, ProfileIndex::kAuto}) {
      options.profile_index = profile_index;
      for (std::size_t threads : kThreadCounts) {
        options.num_threads = threads;
        Rng rng(77);
        ASSERT_OK_AND_ASSIGN(GoodRadiusResult run,
                             GoodRadius(rng, w.points, w.t, w.domain, options));
        const std::string context =
            std::string(" profile_index=") +
            std::string(ProfileIndexName(profile_index)) +
            " threads=" + std::to_string(threads);
        EXPECT_EQ(run.radius, serial.radius) << context;
        EXPECT_EQ(run.grid_index, serial.grid_index) << context;
        EXPECT_EQ(run.gamma, serial.gamma) << context;
        EXPECT_EQ(run.zero_radius_shortcut, serial.zero_radius_shortcut)
            << context;
      }
    }
  }
}

TEST(DeterminismTest, GoodCenterBitIdenticalAcrossThreadCounts) {
  const ClusterWorkload w = Workload(12);
  GoodCenterOptions options;
  options.params = {4.0, 1e-9};
  options.beta = 0.1;

  options.num_threads = 1;
  Rng rng_serial(78);
  ASSERT_OK_AND_ASSIGN(GoodCenterResult serial,
                       GoodCenter(rng_serial, w.points, w.t, 0.05, options));

  for (std::size_t threads : kThreadCounts) {
    options.num_threads = threads;
    Rng rng(78);
    ASSERT_OK_AND_ASSIGN(GoodCenterResult run,
                         GoodCenter(rng, w.points, w.t, 0.05, options));
    EXPECT_EQ(run.center, serial.center) << "threads=" << threads;
    EXPECT_EQ(run.guarantee_radius, serial.guarantee_radius)
        << "threads=" << threads;
    EXPECT_EQ(run.jl_dim, serial.jl_dim) << "threads=" << threads;
    EXPECT_EQ(run.rounds_used, serial.rounds_used) << "threads=" << threads;
    EXPECT_EQ(run.noisy_box_count, serial.noisy_box_count)
        << "threads=" << threads;
    EXPECT_EQ(run.noisy_inlier_count, serial.noisy_inlier_count)
        << "threads=" << threads;
    EXPECT_EQ(run.noise_sigma, serial.noise_sigma) << "threads=" << threads;
  }
}

TEST(DeterminismTest, KClusterBitIdenticalAcrossThreadCounts) {
  Rng data_rng(13);
  const ClusterWorkload w =
      MakeTwoClusters(data_rng, 500, 2, 1u << 10, 0.03, 0.4);
  KClusterOptions options;
  options.params = {8.0, 1e-9};
  options.beta = 0.2;
  options.k = 2;

  options.num_threads = 1;
  Rng rng_serial(79);
  ASSERT_OK_AND_ASSIGN(KClusterResult serial,
                       KCluster(rng_serial, w.points, w.domain, options));

  for (std::size_t threads : kThreadCounts) {
    options.num_threads = threads;
    Rng rng(79);
    ASSERT_OK_AND_ASSIGN(KClusterResult run,
                         KCluster(rng, w.points, w.domain, options));
    ASSERT_EQ(run.rounds.size(), serial.rounds.size()) << "threads=" << threads;
    EXPECT_EQ(run.uncovered, serial.uncovered) << "threads=" << threads;
    for (std::size_t round = 0; round < run.rounds.size(); ++round) {
      EXPECT_EQ(run.rounds[round].ball.center, serial.rounds[round].ball.center)
          << "threads=" << threads << " round=" << round;
      EXPECT_EQ(run.rounds[round].ball.radius, serial.rounds[round].ball.radius)
          << "threads=" << threads << " round=" << round;
    }
  }
}

// GoodCenter's IndexedDataset overload (span-based row access, gathered JL
// GEMM — no ActiveView materialization) must release the same bits as the
// PointSet overload on the materialized active view, at any thread count.
TEST(DeterminismTest, GoodCenterIndexOverloadMatchesActiveView) {
  const ClusterWorkload w = Workload(18);
  ASSERT_OK_AND_ASSIGN(IndexedDataset index,
                       IndexedDataset::Create(w.points, w.domain));
  for (std::size_t i = 0; i < index.size(); i += 3) index.Remove(i);
  const PointSet view = index.ActiveView();
  // Removal takes the planted cluster of 200 down to ~133 members; a looser
  // budget keeps the stable histogram above its suppression threshold.
  const std::size_t t = 120;
  GoodCenterOptions options;
  options.params = {8.0, 1e-9};
  options.beta = 0.1;

  options.num_threads = 1;
  Rng rng_serial(83);
  ASSERT_OK_AND_ASSIGN(GoodCenterResult serial,
                       GoodCenter(rng_serial, view, t, 0.05, options));

  for (std::size_t threads : kThreadCounts) {
    options.num_threads = threads;
    Rng rng(83);
    ASSERT_OK_AND_ASSIGN(GoodCenterResult run,
                         GoodCenter(rng, index, t, 0.05, options));
    EXPECT_EQ(run.center, serial.center) << "threads=" << threads;
    EXPECT_EQ(run.guarantee_radius, serial.guarantee_radius)
        << "threads=" << threads;
    EXPECT_EQ(run.jl_dim, serial.jl_dim) << "threads=" << threads;
    EXPECT_EQ(run.rounds_used, serial.rounds_used) << "threads=" << threads;
  }

  // The cached-projection mode (projection_seed != 0) draws its JL matrix
  // from its own seed — bytes may differ from the default path, but they must
  // still be thread-invariant and stable across repeated calls (the cache).
  options.projection_seed = 42;
  options.num_threads = 1;
  Rng rng_cached_serial(83);
  ASSERT_OK_AND_ASSIGN(
      GoodCenterResult cached_serial,
      GoodCenter(rng_cached_serial, index, t, 0.05, options));
  for (std::size_t threads : kThreadCounts) {
    options.num_threads = threads;
    Rng rng(83);
    ASSERT_OK_AND_ASSIGN(GoodCenterResult run,
                         GoodCenter(rng, index, t, 0.05, options));
    EXPECT_EQ(run.center, cached_serial.center) << "threads=" << threads;
    EXPECT_EQ(run.guarantee_radius, cached_serial.guarantee_radius)
        << "threads=" << threads;
  }
}

// High-dimensional KCluster: the incremental path (span-based rounds over one
// shared index) must release the same bits as the PR-5 rebuild reference for
// every index geometry — the JL-projected candidate index is lossless — at
// any thread count.
TEST(DeterminismTest, HighDimKClusterIndexPathsBitIdentical) {
  Rng data_rng(19);
  const ClusterWorkload w =
      MakeTwoClusters(data_rng, 400, 32, 1u << 10, 0.05, 0.4);
  KClusterOptions options;
  options.params = {8.0, 1e-9};
  options.beta = 0.2;
  options.k = 2;

  options.index_mode = KClusterOptions::IndexMode::kRebuild;
  options.num_threads = 1;
  Rng rng_serial(84);
  ASSERT_OK_AND_ASSIGN(KClusterResult serial,
                       KCluster(rng_serial, w.points, w.domain, options));

  options.index_mode = KClusterOptions::IndexMode::kIncremental;
  for (const auto geometry : {IndexGeometry::kExact, IndexGeometry::kProjected,
                              IndexGeometry::kAuto}) {
    options.index_geometry = geometry;
    for (std::size_t threads : kThreadCounts) {
      options.num_threads = threads;
      Rng rng(84);
      ASSERT_OK_AND_ASSIGN(KClusterResult run,
                           KCluster(rng, w.points, w.domain, options));
      const std::string context =
          std::string(" geometry=") +
          std::string(IndexGeometryName(geometry)) +
          " threads=" + std::to_string(threads);
      ASSERT_EQ(run.rounds.size(), serial.rounds.size()) << context;
      EXPECT_EQ(run.uncovered, serial.uncovered) << context;
      for (std::size_t round = 0; round < run.rounds.size(); ++round) {
        EXPECT_EQ(run.rounds[round].ball.center,
                  serial.rounds[round].ball.center)
            << context << " round=" << round;
        EXPECT_EQ(run.rounds[round].ball.radius,
                  serial.rounds[round].ball.radius)
            << context << " round=" << round;
      }
    }
  }
}

TEST(DeterminismTest, SampleAggregateBitIdenticalAcrossThreadCounts) {
  // Tight Gaussian data so the block means form a stable cluster.
  Rng data_rng(14);
  PointSet s(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < 40000; ++i) {
    for (double& x : p) {
      x = std::clamp(0.5 + 0.02 * SampleGaussianForTest(data_rng), 0.0, 1.0);
    }
    s.Add(p);
  }
  const GridDomain domain(1u << 12, 2);
  SampleAggregateOptions options;
  options.params = {16.0, 1e-8};
  options.beta = 0.2;
  options.block_size = 12;
  options.alpha = 0.8;
  const Estimator f = MeanEstimator();

  options.num_threads = 1;
  Rng rng_serial(80);
  ASSERT_OK_AND_ASSIGN(SampleAggregateResult serial,
                       SampleAggregate(rng_serial, s, f, domain, options));

  for (std::size_t threads : kThreadCounts) {
    options.num_threads = threads;
    Rng rng(80);
    ASSERT_OK_AND_ASSIGN(SampleAggregateResult run,
                         SampleAggregate(rng, s, f, domain, options));
    EXPECT_EQ(run.point, serial.point) << "threads=" << threads;
    EXPECT_EQ(run.radius, serial.radius) << "threads=" << threads;
    EXPECT_EQ(run.blocks, serial.blocks) << "threads=" << threads;
  }
}

TEST(DeterminismTest, PairwiseDistancesBitIdenticalAcrossThreadCounts) {
  Rng rng(15);
  const PointSet s = testing_util::UniformCube(rng, 300, 5);
  ASSERT_OK_AND_ASSIGN(PairwiseDistances serial,
                       PairwiseDistances::Compute(s, 1000, nullptr));
  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(PairwiseDistances run,
                         PairwiseDistances::Compute(s, 1000, &pool));
    for (std::size_t i = 0; i < s.size(); ++i) {
      const auto a = serial.SortedRow(i);
      const auto b = run.SortedRow(i);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "threads=" << threads << " row=" << i;
    }
  }
}

TEST(DeterminismTest, BatchedJlMatchesPerPointApply) {
  Rng data_rng(16);
  const PointSet s = testing_util::UniformCube(data_rng, 257, 24);
  Rng jl_rng(81);
  const JlTransform jl(jl_rng, 24, 9);
  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const Matrix batched = jl.ApplyAll(s, &pool);
    for (std::size_t i = 0; i < s.size(); ++i) {
      const std::vector<double> one = jl.Apply(s[i]);
      const auto row = batched.Row(i);
      ASSERT_TRUE(std::equal(one.begin(), one.end(), row.begin()))
          << "threads=" << threads << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace dpcluster
