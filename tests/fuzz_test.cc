// Randomized composition fuzzing: long random chains of StepFunction
// operations checked against a dense reference model, adversarial inputs fed
// to RecConcave (privacy-relevant paths must never crash), and end-to-end
// shell-cluster robustness (the adversarial-for-centroids workload).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dpcluster/core/one_cluster.h"
#include "dpcluster/dp/rec_concave.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// Dense mirror of a StepFunction.
std::vector<double> Densify(const StepFunction& f) {
  std::vector<double> out(f.domain_size());
  for (std::uint64_t i = 0; i < f.domain_size(); ++i) out[i] = f.ValueAt(i);
  return out;
}

StepFunction RandomStep(Rng& rng, std::uint64_t domain) {
  std::vector<std::uint64_t> starts = {0};
  std::vector<double> values = {static_cast<double>(rng.NextUint64(20))};
  for (std::uint64_t i = 1; i < domain; ++i) {
    if (rng.NextDouble() < 0.25) {
      starts.push_back(i);
      values.push_back(static_cast<double>(rng.NextUint64(20)));
    }
  }
  return StepFunction::FromBreakpoints(domain, std::move(starts),
                                       std::move(values));
}

// A long random chain of shift/prefix/min/window ops, checked densely after
// every step.
class StepFunctionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(StepFunctionFuzzTest, OperationChainsMatchDenseModel) {
  Rng rng(9000 + GetParam());
  StepFunction f = RandomStep(rng, 40 + rng.NextUint64(60));
  std::vector<double> model = Densify(f);

  for (int step = 0; step < 40 && f.domain_size() > 1; ++step) {
    const std::uint64_t domain = f.domain_size();
    switch (rng.NextUint64(4)) {
      case 0: {  // Shift.
        const std::uint64_t off = rng.NextUint64(domain);
        f = f.ShiftLeft(off);
        model.erase(model.begin(),
                    model.begin() + static_cast<std::ptrdiff_t>(off));
        break;
      }
      case 1: {  // Prefix.
        const std::uint64_t len = 1 + rng.NextUint64(domain);
        f = f.Prefix(len);
        model.resize(len);
        break;
      }
      case 2: {  // Pointwise min with a fresh function.
        const StepFunction g = RandomStep(rng, domain);
        f = StepFunction::PointwiseMin(f, g);
        for (std::uint64_t i = 0; i < domain; ++i) {
          model[i] = std::min(model[i], g.ValueAt(i));
        }
        break;
      }
      default: {  // Endpoint window min.
        const std::uint64_t window = 1 + rng.NextUint64(domain);
        f = f.EndpointWindowMin(window);
        std::vector<double> next(domain - window + 1);
        for (std::uint64_t a = 0; a < next.size(); ++a) {
          next[a] = std::min(model[a], model[a + window - 1]);
        }
        model = std::move(next);
        break;
      }
    }
    ASSERT_EQ(f.domain_size(), model.size());
    for (std::uint64_t i = 0; i < model.size(); ++i) {
      ASSERT_DOUBLE_EQ(f.ValueAt(i), model[i]) << "step " << step << " i " << i;
    }
    // The scalar fast path must agree with the materialized one throughout.
    const std::uint64_t w = 1 + rng.NextUint64(f.domain_size());
    ASSERT_DOUBLE_EQ(f.MaxEndpointWindowMin(w),
                     f.EndpointWindowMin(w).MaxValue());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionFuzzTest, ::testing::Range(0, 10));

// RecConcave on adversarial (non-quasi-concave, spiky, flat, negative)
// qualities: Definition 4.2 promises nothing about the OUTPUT, but the
// mechanism must return a valid domain element without crashing (privacy
// holds regardless of the quality's shape).
TEST(RecConcaveAdversarialTest, ArbitraryQualitiesNeverCrash) {
  Rng rng(31);
  RecConcaveOptions options;
  options.epsilon = 1.0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t domain = 2 + rng.NextUint64(5000);
    StepFunction q = RandomStep(rng, domain);
    // Occasionally make it negative or spiky.
    if (trial % 3 == 0) {
      std::vector<double> vals(q.values().begin(), q.values().end());
      for (double& v : vals) v = -v * 1000.0;
      q = StepFunction::FromBreakpoints(
          domain,
          std::vector<std::uint64_t>(q.starts().begin(), q.starts().end()),
          std::move(vals));
    }
    options.base_domain_size = 2 + rng.NextUint64(64);
    ASSERT_OK_AND_ASSIGN(std::uint64_t pick,
                         RecConcave(rng, q, 1.0 + rng.NextDouble() * 100.0,
                                    options));
    ASSERT_LT(pick, domain);
  }
}

TEST(ShellClusterTest, PipelineHandlesCentroidAdversarialWorkload) {
  // All cluster points on a thin shell: the cluster's centroid is the shell
  // center, which contains no points — a classic failure for mean-style
  // summaries, but the 1-cluster ball must still capture the shell.
  Rng rng(33);
  const ClusterWorkload w = MakeShellCluster(rng, 2000, 1200, 8, 1024, 0.05);
  OneClusterOptions options;
  options.params = {8.0, 1e-8};
  options.beta = 0.1;
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, w.points, w.t, w.domain, options));
  // A ball of a few shell radii around the released center captures the
  // cluster (the noisy average lands near the shell center, and the shell is
  // within 1 radius of it; the averaging noise adds ~sigma*sqrt(d)).
  EXPECT_LE(RadiusCapturing(w.points, result.ball.center, w.t),
            8.0 * 0.05);
}

TEST(LedgerTest, OneClusterChargesBothPhasesToBudget) {
  Rng rng(35);
  PlantedClusterSpec spec;
  spec.n = 1000;
  spec.t = 600;
  spec.dim = 2;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  OneClusterOptions options;
  options.params = {8.0, 1e-8};
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, w.points, w.t, w.domain, options));
  EXPECT_EQ(result.ledger.interactions(), 2u);
  const PrivacyParams total = result.ledger.BasicTotal();
  EXPECT_NEAR(total.epsilon, options.params.epsilon, 1e-9);
  EXPECT_NEAR(total.delta, options.params.delta, 1e-15);
}

}  // namespace
}  // namespace dpcluster
