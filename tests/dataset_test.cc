// Tests for the IndexedDataset layer (geo/dataset.h): active-set accounting,
// structural deletion on the cached SpatialGrid, Snapshot/Restore, and the
// exactness contract — every query over the active points must be
// bit-identical to rebuilding a fresh index over ActiveView().

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/la/jl_transform.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/thread_pool.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using testing_util::MakePointSet;

IndexedDataset MakeIndexed(Rng& rng, std::size_t n, std::size_t dim,
                           std::uint64_t levels = 1u << 8) {
  const GridDomain domain(levels, dim);
  PointSet s = testing_util::UniformCube(rng, n, dim);
  domain.SnapAll(s);
  auto index = IndexedDataset::Create(std::move(s), domain);
  EXPECT_OK(index.status());
  return std::move(*index);
}

// Removes every index = 0 mod 3 (a deterministic, scattered third).
std::vector<std::uint32_t> EveryThird(std::size_t n) {
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < n; i += 3) {
    ids.push_back(static_cast<std::uint32_t>(i));
  }
  return ids;
}

TEST(IndexedDatasetTest, CreateValidatesDimensions) {
  const GridDomain domain(16, 2);
  EXPECT_FALSE(
      IndexedDataset::Create(MakePointSet(1, {0.5}), domain).ok());
  EXPECT_OK(
      IndexedDataset::Create(MakePointSet(2, {0.5, 0.5}), domain).status());
}

TEST(IndexedDatasetTest, ActiveAccounting) {
  Rng rng(1);
  IndexedDataset index = MakeIndexed(rng, 30, 2);
  EXPECT_EQ(index.size(), 30u);
  EXPECT_EQ(index.active_size(), 30u);
  EXPECT_EQ(index.ActiveIds().size(), 30u);

  index.Remove(std::size_t{7});
  index.Remove(std::size_t{0});
  EXPECT_EQ(index.active_size(), 28u);
  EXPECT_FALSE(index.IsActive(7));
  EXPECT_TRUE(index.IsActive(1));

  // ActiveIds stays ascending and skips exactly the removed rows.
  const auto ids = index.ActiveIds();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(ids.front(), 1u);
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 7u) == ids.end());

  // ActiveView materializes the same rows PointSet::Subset would.
  const PointSet view = index.ActiveView();
  ASSERT_EQ(view.size(), 28u);
  std::vector<std::size_t> expect_ids(ids.begin(), ids.end());
  const PointSet subset = index.points().Subset(expect_ids);
  for (std::size_t r = 0; r < view.size(); ++r) {
    const auto a = view[r];
    const auto b = subset[r];
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "row=" << r;
  }
}

TEST(IndexedDatasetTest, SnapshotRestoreRoundTrips) {
  Rng rng(2);
  IndexedDataset index = MakeIndexed(rng, 64, 2);
  // Build the grid before mutating so Restore must repair it too.
  std::vector<double> knn(64 * 3);
  index.BatchKnn(3, knn, nullptr);

  const IndexedDataset::Snapshot full = index.TakeSnapshot();
  index.Remove(EveryThird(64));
  const std::size_t after_removal = index.active_size();
  ASSERT_LT(after_removal, 64u);
  const IndexedDataset::Snapshot partial = index.TakeSnapshot();

  index.RestoreAll();
  EXPECT_EQ(index.active_size(), 64u);
  std::vector<double> knn_restored(64 * 3);
  index.BatchKnn(3, knn_restored, nullptr);
  EXPECT_EQ(knn, knn_restored);  // Bit-identical to the pre-removal batch.

  ASSERT_OK(index.Restore(partial));
  EXPECT_EQ(index.active_size(), after_removal);
  ASSERT_OK(index.Restore(full));
  EXPECT_EQ(index.active_size(), 64u);

  // A snapshot from a different dataset is rejected.
  Rng other_rng(3);
  IndexedDataset other = MakeIndexed(other_rng, 10, 2);
  EXPECT_FALSE(index.Restore(other.TakeSnapshot()).ok());
}

// The core exactness contract: after any deletion pattern, BatchKnn over the
// active points equals a fresh SpatialGrid built from ActiveView — same
// bytes — across dimensions (high d exercises the occupied-scan fallback)
// and thread counts.
TEST(IndexedDatasetTest, KnnAfterRemovalMatchesFreshRebuild) {
  std::uint64_t seed = 100;
  for (const auto& [n, dim] : std::vector<std::pair<std::size_t, std::size_t>>{
           {80, 1}, {150, 2}, {200, 3}, {120, 32}}) {
    Rng rng(++seed);
    IndexedDataset index = MakeIndexed(rng, n, dim);
    // Warm the grid with full data, then delete a third.
    std::vector<double> warm(n * 2);
    index.BatchKnn(2, warm, nullptr);
    index.Remove(EveryThird(n));

    const PointSet view = index.ActiveView();
    const std::size_t m = index.active_size();
    for (const std::size_t k : {std::size_t{1}, std::size_t{5}, m - 1}) {
      ASSERT_OK_AND_ASSIGN(SpatialGrid fresh,
                           SpatialGrid::Build(view, index.domain(), k));
      std::vector<double> got(m * k);
      std::vector<double> want(m * k);
      fresh.BatchKnnDistances(k, want, nullptr, /*sorted=*/true);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ThreadPool pool(threads);
        index.BatchKnn(k, got, &pool, /*sorted=*/true);
        EXPECT_EQ(got, want) << "n=" << n << " d=" << dim << " k=" << k
                             << " threads=" << threads;
      }
    }
  }
}

TEST(IndexedDatasetTest, BatchCountWithinMatchesBruteForce) {
  Rng rng(5);
  IndexedDataset index = MakeIndexed(rng, 180, 2);
  index.Remove(EveryThird(180));
  const PointSet view = index.ActiveView();
  const std::size_t m = index.active_size();
  for (const double r : {0.0, 0.05, 0.2, 0.7, 2.0}) {
    std::vector<std::size_t> got(m);
    index.BatchCountWithin(r, got, nullptr);
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t want = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (Distance(view[i], view[j]) <= r) ++want;
      }
      EXPECT_EQ(got[i], want) << "r=" << r << " i=" << i;
    }
  }
}

TEST(IndexedDatasetTest, RemoveWithinMatchesBallContains) {
  Rng rng(6);
  IndexedDataset index = MakeIndexed(rng, 200, 2);
  Ball ball;
  ball.center = {0.5, 0.5};
  ball.radius = 0.25;
  std::size_t expect = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    if (ball.Contains(index.points()[i])) ++expect;
  }
  EXPECT_EQ(index.RemoveWithin(ball), expect);
  EXPECT_EQ(index.active_size(), 200u - expect);
  for (const std::uint32_t id : index.ActiveIds()) {
    EXPECT_FALSE(ball.Contains(index.points()[id]));
  }
  // Idempotent: nothing left to remove.
  EXPECT_EQ(index.RemoveWithin(ball), 0u);
}

// KnnCappedCounts must agree with the PairwiseDistances matrix it replaces:
// identical CappedTopAverage at every queried radius (the two backends narrow
// their distances to float with the same inclusive rounding).
TEST(KnnCappedCountsTest, CappedTopAverageMatchesPairwiseMatrix) {
  std::uint64_t seed = 40;
  for (const auto& [n, dim] : std::vector<std::pair<std::size_t, std::size_t>>{
           {60, 1}, {120, 2}, {90, 5}}) {
    Rng rng(++seed);
    const GridDomain domain(1u << 8, dim);
    PointSet s = testing_util::UniformCube(rng, n, dim);
    domain.SnapAll(s);
    ASSERT_OK_AND_ASSIGN(PairwiseDistances matrix,
                         PairwiseDistances::Compute(s, n));
    ASSERT_OK_AND_ASSIGN(IndexedDataset index,
                         IndexedDataset::Create(s, domain));
    for (const std::size_t t : {std::size_t{1}, std::size_t{2}, n / 8, n / 2}) {
      ASSERT_OK_AND_ASSIGN(KnnCappedCounts counts,
                           KnnCappedCounts::Build(index, t, n));
      for (std::uint64_t g = 0; g < domain.RadiusGridSize(); g += 97) {
        const double r = domain.RadiusFromIndex(g);
        EXPECT_EQ(counts.CappedTopAverage(r, t), matrix.CappedTopAverage(r, t))
            << "n=" << n << " d=" << dim << " t=" << t << " g=" << g;
      }
    }
  }
}

TEST(KnnCappedCountsTest, CountsSaturateAndIncludeDuplicates) {
  // Five duplicates and one far point, as in the pairwise tests.
  const GridDomain domain(16, 1);
  const PointSet s = MakePointSet(1, {0.5, 0.5, 0.5, 0.5, 0.5, 1.0});
  ASSERT_OK_AND_ASSIGN(IndexedDataset index, IndexedDataset::Create(s, domain));
  ASSERT_OK_AND_ASSIGN(KnnCappedCounts counts,
                       KnnCappedCounts::Build(index, 4, 10));
  // At r=0 the duplicates see 5 points, capped at 4; the far point sees 1.
  EXPECT_EQ(counts.CountWithinCapped(0, 0.0), 4u);
  EXPECT_EQ(counts.CountWithinCapped(5, 0.0), 1u);
  EXPECT_DOUBLE_EQ(counts.CappedTopAverage(0.0, 4), 4.0);
  // Negative radius counts nothing.
  EXPECT_EQ(counts.CountWithinCapped(0, -1.0), 0u);
  // A radius covering everything saturates every count.
  EXPECT_DOUBLE_EQ(counts.CappedTopAverage(1.0, 4), 4.0);
}

TEST(KnnCappedCountsTest, RespectsMaxPointsCap) {
  Rng rng(8);
  IndexedDataset index = MakeIndexed(rng, 20, 2);
  EXPECT_EQ(KnnCappedCounts::Build(index, 4, 10).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(KnnCappedCounts::Build(index, 0, 100).ok());
  EXPECT_FALSE(KnnCappedCounts::Build(index, 21, 100).ok());
  EXPECT_OK(KnnCappedCounts::Build(index, 20, 100).status());
}

// After deletions, the capped counts must equal a PairwiseDistances matrix
// built over the surviving points — the contract KCluster's SparseVector
// rounds rely on.
TEST(KnnCappedCountsTest, AgreesWithMatrixAfterRemoval) {
  Rng rng(9);
  IndexedDataset index = MakeIndexed(rng, 140, 2);
  index.Remove(EveryThird(140));
  const PointSet view = index.ActiveView();
  const std::size_t m = index.active_size();
  ASSERT_OK_AND_ASSIGN(PairwiseDistances matrix,
                       PairwiseDistances::Compute(view, m));
  const std::size_t t = m / 6;
  ASSERT_OK_AND_ASSIGN(KnnCappedCounts counts,
                       KnnCappedCounts::Build(index, t, m));
  for (std::uint64_t g = 0; g < index.domain().RadiusGridSize(); g += 61) {
    const double r = index.domain().RadiusFromIndex(g);
    EXPECT_EQ(counts.CappedTopAverage(r, t), matrix.CappedTopAverage(r, t))
        << "g=" << g;
  }
}

// Structural insertion: after interleaved Insert / Remove / Snapshot /
// Restore, every query must still equal a fresh grid built over ActiveView —
// same bytes, any thread count (the other half of the deletion contract).
TEST(IndexedDatasetTest, InsertMatchesFreshRebuild) {
  std::uint64_t seed = 200;
  for (const auto& [n, dim] : std::vector<std::pair<std::size_t, std::size_t>>{
           {90, 1}, {160, 2}, {120, 3}, {100, 32}}) {
    Rng rng(++seed);
    const GridDomain domain(1u << 8, dim);
    PointSet all = testing_util::UniformCube(rng, n, dim);
    domain.SnapAll(all);

    // Start from the first two thirds, warm the grid, then stream edits.
    const std::size_t n0 = (2 * n) / 3;
    PointSet head(dim);
    for (std::size_t i = 0; i < n0; ++i) head.Add(all[i]);
    ASSERT_OK_AND_ASSIGN(IndexedDataset index,
                         IndexedDataset::Create(std::move(head), domain));
    std::vector<double> warm(n0 * 2);
    index.BatchKnn(2, warm, nullptr);
    ASSERT_TRUE(index.grid_built());

    const IndexedDataset::Snapshot snap = index.TakeSnapshot();
    index.Remove(EveryThird(n0));
    for (std::size_t i = n0; i < n; ++i) {
      ASSERT_OK_AND_ASSIGN(const std::size_t id, index.Insert(all[i]));
      EXPECT_EQ(id, i);
    }
    // Rewind the head removals; the streamed-in tail stays active.
    ASSERT_OK(index.Restore(snap));
    EXPECT_EQ(index.active_size(), n);
    index.Remove(EveryThird(n0));
    // The grid survived the whole interleaving without a rebuild.
    EXPECT_TRUE(index.grid_built());

    const PointSet view = index.ActiveView();
    const std::size_t m = index.active_size();
    for (const std::size_t k : {std::size_t{1}, std::size_t{4}, m - 1}) {
      ASSERT_OK_AND_ASSIGN(SpatialGrid fresh,
                           SpatialGrid::Build(view, domain, k));
      std::vector<double> want(m * k);
      fresh.BatchKnnDistances(k, want, nullptr, /*sorted=*/true);
      std::vector<double> got(m * k);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ThreadPool pool(threads);
        index.BatchKnn(k, got, &pool, /*sorted=*/true);
        EXPECT_EQ(got, want) << "n=" << n << " d=" << dim << " k=" << k
                             << " threads=" << threads;
      }
    }
    // Counting queries agree with brute force over the view too.
    std::vector<std::size_t> counts(m);
    index.BatchCountWithin(0.2, counts, nullptr);
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t want = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (Distance(view[i], view[j]) <= 0.2) ++want;
      }
      EXPECT_EQ(counts[i], want) << "i=" << i;
    }
  }
}

TEST(IndexedDatasetTest, InsertValidatesItsArguments) {
  Rng rng(20);
  IndexedDataset index = MakeIndexed(rng, 30, 2);
  const std::vector<double> bad_dim{0.5};
  EXPECT_FALSE(index.Insert(bad_dim).ok());
  const std::vector<double> outside{0.5, 1.5};
  EXPECT_FALSE(index.Insert(outside).ok());
  const std::vector<double> zero_weight{0.5, 0.5};
  EXPECT_FALSE(index.Insert(zero_weight, 0).ok());
  EXPECT_EQ(index.size(), 30u);

  // A weighted insert into an unweighted dataset materializes all-ones.
  EXPECT_FALSE(index.weighted());
  ASSERT_OK_AND_ASSIGN(const std::size_t id, index.Insert(zero_weight, 3));
  EXPECT_EQ(id, 30u);
  EXPECT_TRUE(index.weighted());
  EXPECT_EQ(index.weight(0), 1u);
  EXPECT_EQ(index.weight(30), 3u);
  EXPECT_EQ(index.active_mass(), 33u);
  EXPECT_EQ(index.total_mass(), 33u);
}

TEST(IndexedDatasetTest, CompactRenumbersActiveRows) {
  Rng rng(21);
  IndexedDataset index = MakeIndexed(rng, 80, 2);
  std::vector<double> warm(80 * 2);
  index.BatchKnn(2, warm, nullptr);
  index.Remove(EveryThird(80));
  const PointSet before = index.ActiveView();
  const IndexedDataset::Snapshot stale = index.TakeSnapshot();

  const std::vector<std::uint32_t> old_ids = index.Compact();
  EXPECT_EQ(index.size(), index.active_size());
  EXPECT_EQ(index.active_size(), before.size());
  ASSERT_EQ(old_ids.size(), before.size());
  EXPECT_TRUE(std::is_sorted(old_ids.begin(), old_ids.end()));
  // Row new_id holds the bytes old row old_ids[new_id] held.
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto got = index.points()[i];
    const auto want = before[i];
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin())) << i;
  }
  // Queries over the compacted storage equal the pre-compaction view.
  const std::size_t m = index.active_size();
  std::vector<double> got(m * 3);
  std::vector<double> want(m * 3);
  index.BatchKnn(3, got, nullptr);
  ASSERT_OK_AND_ASSIGN(SpatialGrid fresh, SpatialGrid::Build(before,
                                                             index.domain(), 3));
  fresh.BatchKnnDistances(3, want, nullptr, /*sorted=*/true);
  EXPECT_EQ(got, want);
  // Snapshots from before the renumbering no longer apply.
  EXPECT_FALSE(index.Restore(stale).ok());
}

// Streaming maintenance of the t-NN rows: after a batch of edits,
// ApplyBatch must leave the structure answering exactly like a fresh Build
// over the new active set, at any thread count, while recomputing only a
// subset of the surviving rows.
TEST(KnnCappedCountsTest, ApplyBatchMatchesFreshBuild) {
  std::uint64_t seed = 300;
  for (const auto& [n, dim] : std::vector<std::pair<std::size_t, std::size_t>>{
           {120, 2}, {90, 3}}) {
    Rng rng(++seed);
    const GridDomain domain(1u << 8, dim);
    PointSet all = testing_util::UniformCube(rng, n, dim);
    domain.SnapAll(all);
    const std::size_t n0 = (3 * n) / 4;
    PointSet head(dim);
    for (std::size_t i = 0; i < n0; ++i) head.Add(all[i]);
    ASSERT_OK_AND_ASSIGN(IndexedDataset index,
                         IndexedDataset::Create(std::move(head), domain));
    const std::size_t t = n0 / 8;
    ASSERT_OK_AND_ASSIGN(KnnCappedCounts counts,
                         KnnCappedCounts::Build(index, t, n));

    // Three rounds of mixed edits, rows patched after each round.
    std::size_t next = n0;
    std::uint32_t victim = 1;
    for (int round = 0; round < 3; ++round) {
      std::vector<std::uint32_t> added;
      std::vector<std::uint32_t> removed;
      for (std::size_t a = 0; a < n / 10 && next < n; ++a) {
        ASSERT_OK_AND_ASSIGN(const std::size_t id, index.Insert(all[next]));
        added.push_back(static_cast<std::uint32_t>(id));
        ++next;
      }
      for (std::size_t d2 = 0; d2 < n / 16; ++d2, victim += 7) {
        while (!index.IsActive(victim % n0)) ++victim;
        removed.push_back(victim % n0);
        index.Remove(static_cast<std::size_t>(victim % n0));
      }
      ThreadPool pool(round + 1);
      ASSERT_OK(counts.ApplyBatch(index, added, removed, &pool));
      EXPECT_LE(counts.last_invalidated(), index.active_size());

      ASSERT_OK_AND_ASSIGN(KnnCappedCounts fresh,
                           KnnCappedCounts::Build(index, t, n));
      ASSERT_EQ(counts.size(), fresh.size());
      for (std::uint64_t g = 0; g < domain.RadiusGridSize(); g += 53) {
        const double r = domain.RadiusFromIndex(g);
        for (std::size_t rank = 0; rank < counts.size(); rank += 3) {
          ASSERT_EQ(counts.CountWithinCapped(rank, r),
                    fresh.CountWithinCapped(rank, r))
              << "round=" << round << " g=" << g << " rank=" << rank;
        }
        ASSERT_EQ(counts.CappedTopAverage(r, t), fresh.CappedTopAverage(r, t))
            << "round=" << round << " g=" << g;
      }
    }
  }
}

TEST(KnnCappedCountsTest, ApplyBatchRejectsInconsistentEdits) {
  Rng rng(31);
  IndexedDataset index = MakeIndexed(rng, 60, 2);
  ASSERT_OK_AND_ASSIGN(KnnCappedCounts counts,
                       KnnCappedCounts::Build(index, 6, 60));
  // Nothing changed but edits claimed: rejected.
  const std::vector<std::uint32_t> phantom{3};
  EXPECT_FALSE(counts.ApplyBatch(index, {}, phantom).ok());
  EXPECT_FALSE(counts.ApplyBatch(index, phantom, {}).ok());
  // A no-op batch is fine.
  EXPECT_OK(counts.ApplyBatch(index, {}, {}));
  // Removing below cap: rejected (rebuild with a smaller cap instead).
  std::vector<std::uint32_t> most;
  for (std::uint32_t i = 0; i < 56; ++i) most.push_back(i);
  index.Remove(most);
  EXPECT_FALSE(counts.ApplyBatch(index, {}, most).ok());
}

// The per-dataset projection cache: one GEMM per (seed, out_dim), a stable
// reference across repeated calls, and row-for-row agreement with applying
// the same JlTransform directly.
TEST(IndexedDatasetTest, ProjectionCacheReusesAcrossCalls) {
  Rng rng(10);
  IndexedDataset index = MakeIndexed(rng, 40, 16);
  const std::uint64_t seed = 77;
  const std::size_t out_dim = 8;

  const Matrix& first = index.ProjectedAll(seed, out_dim);
  ASSERT_EQ(first.rows(), 40u);
  ASSERT_EQ(first.cols(), out_dim);
  // Same (seed, out_dim) again: the same cached object, not a recompute.
  EXPECT_EQ(&index.ProjectedAll(seed, out_dim), &first);

  // Rows are bit-identical to the reference JlTransform drawn from Rng(seed).
  Rng jl_rng(seed);
  const JlTransform jl(jl_rng, index.dim(), out_dim);
  for (std::size_t i = 0; i < index.size(); ++i) {
    const std::vector<double> expect = jl.Apply(index.points()[i]);
    const auto row = first.Row(i);
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expect.begin())) << i;
  }

  // A different (seed, out_dim) replaces the single-entry cache — and the
  // original key recomputes correctly afterwards.
  const Matrix& other = index.ProjectedAll(seed + 1, out_dim);
  ASSERT_EQ(other.rows(), 40u);
  const Matrix& back = index.ProjectedAll(seed, out_dim);
  const auto row0 = back.Row(0);
  const std::vector<double> expect0 = jl.Apply(index.points()[0]);
  EXPECT_TRUE(std::equal(row0.begin(), row0.end(), expect0.begin()));
}

// ProjectedActive is the ActiveIds() row-gather of ProjectedAll, cached per
// active-set version: stable across calls, invalidated by Remove / Restore.
TEST(IndexedDatasetTest, ProjectedActiveTracksActiveSet) {
  Rng rng(11);
  IndexedDataset index = MakeIndexed(rng, 60, 16);
  const std::uint64_t seed = 5;
  const std::size_t out_dim = 6;

  const Matrix& all = index.ProjectedAll(seed, out_dim);
  // Every row active: the active slice is the full matrix itself.
  EXPECT_EQ(&index.ProjectedActive(seed, out_dim), &all);

  const auto snapshot = index.TakeSnapshot();
  index.Remove(EveryThird(60));
  const Matrix& active = index.ProjectedActive(seed, out_dim);
  ASSERT_EQ(active.rows(), index.active_size());
  const auto ids = index.ActiveIds();
  for (std::size_t r = 0; r < active.rows(); ++r) {
    const auto got = active.Row(r);
    const auto expect = all.Row(ids[r]);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin())) << r;
  }
  // No mutation in between: the same cached slice.
  EXPECT_EQ(&index.ProjectedActive(seed, out_dim), &active);

  // Restore invalidates the slice; all rows active again -> the full matrix.
  EXPECT_OK(index.Restore(snapshot));
  EXPECT_EQ(index.ProjectedActive(seed, out_dim).rows(), 60u);
  EXPECT_EQ(&index.ProjectedActive(seed, out_dim), &all);

  // Another removal pattern after the restore re-gathers the right rows.
  index.Remove(std::size_t{1});
  const Matrix& again = index.ProjectedActive(seed, out_dim);
  ASSERT_EQ(again.rows(), 59u);
  const auto got = again.Row(1);  // ActiveIds()[1] == 2 after removing row 1.
  const auto expect = all.Row(2);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()));
}

}  // namespace
}  // namespace dpcluster
