// Monte-Carlo privacy audits: estimate the empirical privacy loss of the
// primitive mechanisms on worst-case neighboring inputs and check it stays
// within the configured budget. These are necessary-condition tests (an audit
// can only catch violations, not prove privacy), but they reliably flag scale
// bugs like using sensitivity/2 noise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "dpcluster/dp/above_threshold.h"
#include "dpcluster/dp/laplace_mechanism.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/random/distributions.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// Estimates max over output bins of |ln(P0/P1)| for two output samples.
double EmpiricalEpsilon(const std::vector<int>& h0, const std::vector<int>& h1,
                        int trials, int min_count) {
  double worst = 0.0;
  for (std::size_t b = 0; b < h0.size(); ++b) {
    if (h0[b] < min_count || h1[b] < min_count) continue;
    const double p0 = static_cast<double>(h0[b]) / trials;
    const double p1 = static_cast<double>(h1[b]) / trials;
    worst = std::max(worst, std::abs(std::log(p0 / p1)));
  }
  return worst;
}

TEST(PrivacyAuditTest, LaplaceMechanismStaysWithinBudget) {
  const double eps = 1.0;
  Rng rng(1);
  ASSERT_OK_AND_ASSIGN(auto mech, LaplaceMechanism::Create(eps, 1.0));
  // Neighboring counts 10 and 11; bin outputs at resolution 0.5 around them.
  const int trials = 400000;
  const int bins = 80;
  std::vector<int> h0(bins, 0);
  std::vector<int> h1(bins, 0);
  const auto bin_of = [&](double v) {
    const int b = static_cast<int>(std::floor((v - 10.5) / 0.5)) + bins / 2;
    return std::clamp(b, 0, bins - 1);
  };
  for (int i = 0; i < trials; ++i) {
    ++h0[bin_of(mech.Release(rng, 10.0))];
    ++h1[bin_of(mech.Release(rng, 11.0))];
  }
  const double emp = EmpiricalEpsilon(h0, h1, trials, 500);
  // Interior bins of width 0.5 can differ by at most eps (plus sampling
  // noise); the clamped edge bins stay within eps as well.
  EXPECT_LE(emp, eps * 1.15);
  // And the mechanism is not trivially over-noised: the loss is visible.
  EXPECT_GE(emp, eps * 0.3);
}

TEST(PrivacyAuditTest, AboveThresholdFirstAnswerPattern) {
  // Audit the distribution of the halting round over a fixed query stream for
  // neighboring databases (each query differs by 1).
  const double eps = 1.0;
  const int rounds = 6;
  const int trials = 300000;
  Rng rng(2);
  std::vector<int> h0(rounds + 1, 0);
  std::vector<int> h1(rounds + 1, 0);
  for (int i = 0; i < trials; ++i) {
    for (int side = 0; side < 2; ++side) {
      auto at = AboveThreshold::Create(rng, eps, 5.0);
      ASSERT_TRUE(at.ok());
      int halt_round = rounds;
      for (int q = 0; q < rounds; ++q) {
        auto top = at->Process(rng, 4.0 + (side == 0 ? 0.0 : 1.0));
        ASSERT_TRUE(top.ok());
        if (*top) {
          halt_round = q;
          break;
        }
      }
      (side == 0 ? h0 : h1)[halt_round] += 1;
    }
  }
  const double emp = EmpiricalEpsilon(h0, h1, trials, 500);
  EXPECT_LE(emp, eps * 1.15);
}

TEST(PrivacyAuditTest, StableHistogramCellChoiceWithinBudget) {
  const PrivacyParams p{1.0, 1e-6};
  const int trials = 200000;
  Rng rng(3);
  // Neighboring histograms: one element moves between two heavy cells.
  using Counts = std::unordered_map<int, std::size_t, std::hash<int>>;
  const Counts c0{{0, 60}, {1, 50}, {2, 40}};
  const Counts c1{{0, 59}, {1, 51}, {2, 40}};
  std::vector<int> h0(4, 0);
  std::vector<int> h1(4, 0);
  for (int i = 0; i < trials; ++i) {
    auto a = ChooseHeavyCell(rng, c0, p);
    ++h0[a.ok() ? a->key : 3];
    auto b = ChooseHeavyCell(rng, c1, p);
    ++h1[b.ok() ? b->key : 3];
  }
  const double emp = EmpiricalEpsilon(h0, h1, trials, 300);
  EXPECT_LE(emp, p.epsilon * 1.2);
}

}  // namespace
}  // namespace dpcluster
