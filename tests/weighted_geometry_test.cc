// Weighted-dataset exactness: every weighted geometry query answers in
// *expanded* terms — a weighted IndexedDataset is semantically the dataset
// in which row i appears weight(i) times — and the answers are pinned
// BIT-IDENTICAL to running the unweighted query on the duplicate-expanded
// PointSet, across all 8 scenario families and thread counts {1, 2, 8}.
// This is the contract that lets the coreset layer stand a 10^6-point
// dataset behind a few-thousand-row summary without changing any consumer
// (see coreset/coreset.h and geo/dataset.h).

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "dpcluster/core/radius_profile.h"
#include "dpcluster/data/registry.h"
#include "dpcluster/data/scenario.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/parallel/thread_pool.h"
#include "test_util.h"

namespace dpcluster {
namespace {

struct WeightedCase {
  ScenarioInstance instance;
  std::vector<std::uint64_t> weights;  // synthesized, w_i = 1 + (i mod 5)
  PointSet expanded;                   // row i repeated weights[i] times
  std::vector<std::size_t> first_copy;  // expanded row of copy 0 of row i
  std::uint64_t mass = 0;
};

// Generates a small instance of `family` and synthesizes deterministic
// multiplicities plus the duplicate-expanded reference dataset.
WeightedCase MakeCase(const std::string& family) {
  ScenarioSpec spec;
  spec.scenario = family;
  spec.n = 96;
  spec.dim = 2;
  spec.levels = 1u << 10;
  Rng rng(977);
  auto instance = GenerateScenario(rng, spec);
  EXPECT_TRUE(instance.ok()) << family << ": " << instance.status().ToString();

  WeightedCase c;
  c.instance = std::move(*instance);
  const PointSet& s = c.instance.points;
  c.expanded = PointSet(s.dim());
  c.weights.reserve(s.size());
  c.first_copy.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint64_t w = 1 + (i % 5);
    c.weights.push_back(w);
    c.first_copy.push_back(c.expanded.size());
    for (std::uint64_t copy = 0; copy < w; ++copy) c.expanded.Add(s[i]);
    c.mass += w;
  }
  return c;
}

const char* kFamilies[] = {
    "planted_cluster", "gaussian_mixture", "outlier_contaminated",
    "heavy_tailed",    "axis_degenerate",  "grid_snapped",
    "annulus",         "near_tie"};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

class WeightedGeometryTest : public ::testing::TestWithParam<const char*> {};

// BatchKnn / BatchCountWithin: the weighted row of point i must equal the
// expanded row of (any copy of) point i, byte for byte.
TEST_P(WeightedGeometryTest, BatchQueriesMatchExpanded) {
  const WeightedCase c = MakeCase(GetParam());
  const std::size_t n = c.instance.points.size();
  ASSERT_OK_AND_ASSIGN(
      IndexedDataset weighted,
      IndexedDataset::Create(c.instance.points, c.instance.domain, c.weights));
  ASSERT_OK_AND_ASSIGN(IndexedDataset expanded,
                       IndexedDataset::Create(c.expanded, c.instance.domain));
  ASSERT_EQ(weighted.active_mass(), c.mass);

  const std::size_t k = 7;  // < mass - 1 by construction (mass ~ 3n)
  std::vector<double> reference_knn;
  std::vector<std::vector<std::size_t>> reference_counts;
  const double radii[] = {0.0, 0.01, 0.1, 0.5, 2.0};
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);

    std::vector<double> wknn(n * k);
    weighted.BatchKnn(k, wknn, &pool);
    std::vector<double> eknn(c.expanded.size() * k);
    expanded.BatchKnn(k, eknn, &pool);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        EXPECT_EQ(wknn[i * k + j], eknn[c.first_copy[i] * k + j])
            << "row " << i << " knn " << j << " threads " << threads;
      }
    }
    if (reference_knn.empty()) {
      reference_knn = wknn;  // thread-count determinism of the weighted path
    } else {
      EXPECT_EQ(reference_knn, wknn) << "threads " << threads;
    }

    std::vector<std::vector<std::size_t>> all_counts;
    for (const double r : radii) {
      std::vector<std::size_t> wcount(n);
      weighted.BatchCountWithin(r, wcount, &pool);
      std::vector<std::size_t> ecount(c.expanded.size());
      expanded.BatchCountWithin(r, ecount, &pool);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(wcount[i], ecount[c.first_copy[i]])
            << "row " << i << " r " << r << " threads " << threads;
      }
      all_counts.push_back(std::move(wcount));
    }
    if (reference_counts.empty()) {
      reference_counts = std::move(all_counts);
    } else {
      EXPECT_EQ(reference_counts, all_counts) << "threads " << threads;
    }
  }
}

// KnnCappedCounts: weighted compressed rows answer CountWithinCapped and
// CappedTopAverage bit-identically to the expanded unweighted build.
TEST_P(WeightedGeometryTest, KnnCappedCountsMatchExpanded) {
  const WeightedCase c = MakeCase(GetParam());
  const std::size_t n = c.instance.points.size();
  ASSERT_OK_AND_ASSIGN(
      IndexedDataset weighted,
      IndexedDataset::Create(c.instance.points, c.instance.domain, c.weights));
  ASSERT_OK_AND_ASSIGN(IndexedDataset expanded,
                       IndexedDataset::Create(c.expanded, c.instance.domain));

  const std::size_t cap = static_cast<std::size_t>(c.mass) / 4;
  const double radii[] = {0.0, 0.01, 0.1, 0.5, 2.0};
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(
        KnnCappedCounts wcounts,
        KnnCappedCounts::Build(weighted, cap, n, &pool));
    ASSERT_OK_AND_ASSIGN(
        KnnCappedCounts ecounts,
        KnnCappedCounts::Build(expanded, cap, c.expanded.size(), &pool));
    for (const double r : radii) {
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(wcounts.CountWithinCapped(i, r),
                  ecounts.CountWithinCapped(c.first_copy[i], r))
            << "row " << i << " r " << r << " threads " << threads;
      }
      for (const std::size_t top : {std::size_t{1}, cap / 2, cap}) {
        if (top == 0) continue;
        EXPECT_EQ(wcounts.CappedTopAverage(r, top),
                  ecounts.CappedTopAverage(r, top))
            << "r " << r << " top " << top << " threads " << threads;
      }
    }
  }
}

// RadiusProfile: the weighted sweep's step function equals the exact profile
// of the expanded dataset — same breakpoints, same values.
TEST_P(WeightedGeometryTest, RadiusProfileMatchesExpanded) {
  const WeightedCase c = MakeCase(GetParam());
  ASSERT_OK_AND_ASSIGN(
      IndexedDataset weighted,
      IndexedDataset::Create(c.instance.points, c.instance.domain, c.weights));
  const std::size_t t = static_cast<std::size_t>(c.mass) / 8;
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(
        RadiusProfile wprofile,
        RadiusProfile::Build(weighted, t, c.instance.points.size(), &pool));
    ASSERT_OK_AND_ASSIGN(
        RadiusProfile eprofile,
        RadiusProfile::Build(c.expanded, t, c.instance.domain,
                             c.expanded.size(), &pool));
    ASSERT_EQ(wprofile.solution_grid_size(), eprofile.solution_grid_size());
    const StepFunction& wf = wprofile.fine_l();
    const StepFunction& ef = eprofile.fine_l();
    ASSERT_EQ(wf.domain_size(), ef.domain_size()) << "threads " << threads;
    ASSERT_EQ(wf.num_pieces(), ef.num_pieces()) << "threads " << threads;
    for (std::size_t p = 0; p < wf.num_pieces(); ++p) {
      EXPECT_EQ(wf.starts()[p], ef.starts()[p]) << "piece " << p;
      EXPECT_EQ(wf.values()[p], ef.values()[p]) << "piece " << p;
    }
  }
}

// MassWithin: the ball-mass primitive the weighted RefineRadius path counts
// with equals CountWithin on the expanded dataset for any center and radius.
TEST_P(WeightedGeometryTest, MassWithinMatchesExpanded) {
  const WeightedCase c = MakeCase(GetParam());
  ASSERT_OK_AND_ASSIGN(
      IndexedDataset weighted,
      IndexedDataset::Create(c.instance.points, c.instance.domain, c.weights));
  const std::vector<double> centers[] = {
      c.instance.primary().center,
      std::vector<double>(c.instance.points.dim(), 0.0),
      std::vector<double>(c.instance.points.dim(), 0.5)};
  for (const auto& center : centers) {
    for (const double r : {0.0, 0.05, 0.25, 1.0, 3.0}) {
      EXPECT_EQ(MassWithin(weighted.points(), weighted.ActiveIds(),
                           weighted.weights(), center, r),
                CountWithin(c.expanded, center, r))
          << "r " << r;
    }
  }
}

// Deletion removes mass: removing a weighted row is removing all its copies.
TEST_P(WeightedGeometryTest, RemovalDropsMass) {
  const WeightedCase c = MakeCase(GetParam());
  ASSERT_OK_AND_ASSIGN(
      IndexedDataset weighted,
      IndexedDataset::Create(c.instance.points, c.instance.domain, c.weights));
  const Ball ball{c.instance.primary().center, c.instance.primary().radius};
  std::uint64_t removed_mass = 0;
  for (std::size_t i = 0; i < c.instance.points.size(); ++i) {
    if (ball.Contains(c.instance.points[i])) removed_mass += c.weights[i];
  }
  weighted.RemoveWithin(ball);
  EXPECT_EQ(weighted.active_mass(), c.mass - removed_mass);
  weighted.RestoreAll();
  EXPECT_EQ(weighted.active_mass(), c.mass);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, WeightedGeometryTest,
                         ::testing::ValuesIn(kFamilies));

// The grid_snapped emission: WeightedDistinctIndex collapses the duplicate-
// heavy instance losslessly, and a weighted consumer on the collapsed index
// answers bit-identically to the expanded (raw) instance.
TEST(WeightedDistinct, GridSnappedCollapsesLosslessly) {
  ScenarioSpec spec;
  spec.scenario = "grid_snapped";
  spec.n = 512;
  spec.dim = 2;
  spec.levels = 1u << 10;
  spec.snap_levels = 4;  // few occupied cells: heavy duplication
  Rng rng(1231);
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance,
                       GenerateScenario(rng, spec));
  ASSERT_OK_AND_ASSIGN(IndexedDataset distinct,
                       instance.WeightedDistinctIndex());
  EXPECT_LT(distinct.size(), instance.points.size());
  EXPECT_EQ(distinct.total_mass(), instance.points.size());

  // Lossless: the weighted profile over the distinct rows is the raw profile.
  const std::size_t t = instance.points.size() / 8;
  ASSERT_OK_AND_ASSIGN(
      RadiusProfile wprofile,
      RadiusProfile::Build(distinct, t, distinct.size()));
  ASSERT_OK_AND_ASSIGN(
      RadiusProfile eprofile,
      RadiusProfile::Build(instance.points, t, instance.domain,
                           instance.points.size()));
  const StepFunction& wf = wprofile.fine_l();
  const StepFunction& ef = eprofile.fine_l();
  ASSERT_EQ(wf.num_pieces(), ef.num_pieces());
  for (std::size_t p = 0; p < wf.num_pieces(); ++p) {
    EXPECT_EQ(wf.starts()[p], ef.starts()[p]) << "piece " << p;
    EXPECT_EQ(wf.values()[p], ef.values()[p]) << "piece " << p;
  }
}

}  // namespace
}  // namespace dpcluster
