// Tests for the Householder QR / random orthonormal basis (GoodCenter step 8).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/la/qr.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "test_util.h"

namespace dpcluster {
namespace {

class RandomBasisTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomBasisTest, RowsAreOrthonormal) {
  const std::size_t d = GetParam();
  Rng rng(17 + d);
  const Matrix z = RandomOrthonormalBasis(rng, d);
  ASSERT_EQ(z.rows(), d);
  ASSERT_EQ(z.cols(), d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      const double dot = Dot(z.Row(i), z.Row(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-10) << "i=" << i << " j=" << j;
    }
  }
}

TEST_P(RandomBasisTest, PreservesNorms) {
  const std::size_t d = GetParam();
  Rng rng(99 + d);
  const Matrix z = RandomOrthonormalBasis(rng, d);
  std::vector<double> x(d);
  FillGaussian(rng, 1.0, x);
  std::vector<double> zx(d);
  z.Multiply(x, zx);
  EXPECT_NEAR(Norm2(zx), Norm2(x), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, RandomBasisTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 8, 17, 64));

TEST(RandomBasisTest, HaarSignSymmetry) {
  // Each entry of a Haar-random basis vector should be symmetric around 0.
  Rng rng(4);
  double sum = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const Matrix z = RandomOrthonormalBasis(rng, 3);
    sum += z.At(0, 0);
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
}

TEST(OrthonormalFactorTest, ReproducesIdentityForIdentity) {
  const Matrix q = OrthonormalFactor(Matrix::Identity(4));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(q.At(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(OrthonormalFactorTest, HandlesRankDeficientInput) {
  Matrix a(3, 3);  // Zero matrix: Q should still be orthonormal (identity).
  const Matrix q = OrthonormalFactor(a);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(Dot(q.Row(i), q.Row(i)), 1.0, 1e-12);
  }
}

TEST(RandomBasisTest, DeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  const Matrix za = RandomOrthonormalBasis(a, 6);
  const Matrix zb = RandomOrthonormalBasis(b, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(za.At(i, j), zb.At(i, j));
    }
  }
}

}  // namespace
}  // namespace dpcluster
