// Tests for the deterministic parallel runtime (ThreadPool + ParallelFor).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dpcluster/parallel/parallel_for.h"
#include "dpcluster/parallel/thread_pool.h"

namespace dpcluster {
namespace {

TEST(ThreadPoolTest, ResolvesThreadCount) {
  EXPECT_GE(ThreadPool(0).num_threads(), 1u);
  EXPECT_EQ(ThreadPool(1).num_threads(), 1u);
  EXPECT_EQ(ThreadPool(5).num_threads(), 5u);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, 0, 16, [&](std::size_t) { ++calls; });
  ParallelFor(&pool, 7, 7, 16, [&](std::size_t) { ++calls; });
  ParallelForChunks(&pool, 3, 3, 16,
                    [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, RangeSmallerThanChunkRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(5, 0);
  ParallelFor(&pool, 0, 5, 100, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 5);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(&pool, 0, n, 7, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, NullPoolIsSerial) {
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, 0, 64, 8, [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ChunkDecompositionIgnoresThreadCount) {
  // The chunk boundaries are a pure function of (range, grain) — the
  // foundation of the bit-identical-at-any-thread-count guarantee.
  EXPECT_EQ(NumChunks(0, 16), 0u);
  EXPECT_EQ(NumChunks(1, 16), 1u);
  EXPECT_EQ(NumChunks(16, 16), 1u);
  EXPECT_EQ(NumChunks(17, 16), 2u);
  const auto [lo, hi] = ChunkRange(10, 50, 16, 1);
  EXPECT_EQ(lo, 26u);
  EXPECT_EQ(hi, 42u);
  const auto [lo2, hi2] = ChunkRange(10, 50, 16, 2);
  EXPECT_EQ(lo2, 42u);
  EXPECT_EQ(hi2, 50u);
}

TEST(ParallelForTest, ExceptionsPropagate) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        ParallelFor(
            &pool, 0, 1024, 8,
            [&](std::size_t i) {
              if (i == 500) throw std::runtime_error("boom");
            },
            kAlwaysParallel),
        std::runtime_error);
    // The pool survives a throwing region and stays usable.
    std::atomic<int> calls{0};
    ParallelFor(&pool, 0, 100, 8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);
  }
}

TEST(ParallelForTest, LowestChunkExceptionWins) {
  ThreadPool pool(8);
  try {
    ParallelForChunks(
        &pool, 0, 1024, 8,
        [&](std::size_t lo, std::size_t, std::size_t) {
          throw std::runtime_error("chunk@" + std::to_string(lo));
        },
        kAlwaysParallel);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk@0");
  }
}

TEST(ParallelForTest, SmallRangesRunInlineOnTheCallerThread) {
  // The minimum-grain cutoff: a range offering fewer than
  // kMinItemsPerThread indices per pool thread never pays a worker handoff.
  ThreadPool pool(4);
  const std::size_t n = 4 * kMinItemsPerThread - 1;
  std::set<std::thread::id> ids;
  ParallelForChunks(&pool, 0, n, kDefaultGrain,
                    [&](std::size_t, std::size_t, std::size_t) {
                      ids.insert(std::this_thread::get_id());
                    });
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ParallelForTest, AlwaysParallelOptOutKeepsSmallRangesCorrect) {
  // Heavy-per-item call sites opt out with kAlwaysParallel; the decomposition
  // and results are unchanged either way.
  ThreadPool pool(4);
  std::vector<int> hits(64, 0);
  ParallelFor(
      &pool, 0, 64, 8, [&](std::size_t i) { ++hits[i]; }, kAlwaysParallel);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ParallelWritesMatchSerial) {
  const std::size_t n = 4096;
  std::vector<double> serial(n);
  ParallelFor(nullptr, 0, n, 64, [&](std::size_t i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0 / (1.0 + static_cast<double>(i));
  });
  for (std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(n);
    ParallelFor(&pool, 0, n, 64, [&](std::size_t i) {
      parallel[i] = static_cast<double>(i) * 1.5 + 1.0 / (1.0 + static_cast<double>(i));
    });
    EXPECT_EQ(serial, parallel);
  }
}

}  // namespace
}  // namespace dpcluster
