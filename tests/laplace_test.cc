// Tests for the Laplace mechanism (Theorem 2.3).

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/dp/laplace_mechanism.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  ASSERT_OK_AND_ASSIGN(auto mech, LaplaceMechanism::Create(0.5, 2.0));
  EXPECT_DOUBLE_EQ(mech.scale(), 4.0);
  EXPECT_DOUBLE_EQ(mech.epsilon(), 0.5);
}

TEST(LaplaceMechanismTest, RejectsBadParams) {
  EXPECT_FALSE(LaplaceMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(-1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, -2.0).ok());
}

TEST(LaplaceMechanismTest, UnbiasedAroundValue) {
  Rng rng(1);
  ASSERT_OK_AND_ASSIGN(auto mech, LaplaceMechanism::Create(1.0, 1.0));
  const double mean = testing_util::SampleMean(
      100000, [&] { return mech.Release(rng, 10.0); });
  EXPECT_NEAR(mean, 10.0, 0.05);
}

TEST(LaplaceMechanismTest, TailBoundHolds) {
  Rng rng(2);
  ASSERT_OK_AND_ASSIGN(auto mech, LaplaceMechanism::Create(2.0, 1.0));
  const double beta = 0.05;
  const double bound = mech.TailBound(beta);
  int exceed = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (std::abs(mech.Release(rng, 0.0)) > bound) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / trials, beta, 0.01);
}

TEST(LaplaceMechanismTest, VectorReleaseIsElementwise) {
  Rng rng(3);
  ASSERT_OK_AND_ASSIGN(auto mech, LaplaceMechanism::Create(1.0, 1.0));
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const auto out = mech.ReleaseVector(rng, v);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(out[i], v[i]);  // Noise was added (a.s.).
    EXPECT_NEAR(out[i], v[i], 40.0);
  }
}

TEST(LaplaceMechanismTest, SmallerEpsilonMoreNoise) {
  Rng rng(4);
  ASSERT_OK_AND_ASSIGN(auto tight, LaplaceMechanism::Create(10.0, 1.0));
  ASSERT_OK_AND_ASSIGN(auto loose, LaplaceMechanism::Create(0.1, 1.0));
  double mad_tight = 0.0;
  double mad_loose = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    mad_tight += std::abs(tight.Release(rng, 0.0));
    mad_loose += std::abs(loose.Release(rng, 0.0));
  }
  EXPECT_GT(mad_loose, 10.0 * mad_tight);
}

}  // namespace
}  // namespace dpcluster
