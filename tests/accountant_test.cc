// Tests for composition accounting (Theorems 2.1 and 4.7).

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/dp/accountant.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(CompositionTest, BasicComposeIsLinear) {
  const PrivacyParams each{0.1, 1e-8};
  const PrivacyParams total = BasicCompose(each, 10);
  EXPECT_NEAR(total.epsilon, 1.0, 1e-12);
  EXPECT_NEAR(total.delta, 1e-7, 1e-18);
}

TEST(CompositionTest, AdvancedComposeFormula) {
  const PrivacyParams each{0.1, 1e-8};
  const std::size_t k = 100;
  const double slack = 1e-6;
  const PrivacyParams total = AdvancedCompose(each, k, slack);
  const double expect =
      2.0 * k * 0.01 + 0.1 * std::sqrt(2.0 * k * std::log(1.0 / slack));
  EXPECT_NEAR(total.epsilon, expect, 1e-12);
  EXPECT_NEAR(total.delta, k * 1e-8 + slack, 1e-15);
}

TEST(CompositionTest, AdvancedBeatsBasicForManySmallMechanisms) {
  const PrivacyParams each{0.01, 0.0};
  const std::size_t k = 10000;
  EXPECT_LT(AdvancedCompose(each, k, 1e-9).epsilon,
            BasicCompose(each, k).epsilon);
}

TEST(CompositionTest, InverseAdvancedRoundTrips) {
  for (std::size_t k : {1u, 4u, 64u, 1024u}) {
    for (double target : {0.1, 1.0, 3.0}) {
      const double eps_i = InverseAdvancedEpsilon(target, k, 1e-9);
      const PrivacyParams composed = AdvancedCompose({eps_i, 0.0}, k, 1e-9);
      EXPECT_NEAR(composed.epsilon, target, 1e-9) << "k=" << k;
    }
  }
}

TEST(CompositionTest, InverseAdvancedShrinksWithK) {
  EXPECT_GT(InverseAdvancedEpsilon(1.0, 2, 1e-9),
            InverseAdvancedEpsilon(1.0, 200, 1e-9));
}

TEST(AccountantTest, LedgerTotals) {
  Accountant acc;
  acc.Charge("laplace", {0.5, 0.0});
  acc.Charge("gaussian", {0.25, 1e-9});
  acc.Charge("histogram", {0.25, 1e-9});
  EXPECT_EQ(acc.interactions(), 3u);
  const PrivacyParams total = acc.BasicTotal();
  EXPECT_NEAR(total.epsilon, 1.0, 1e-12);
  EXPECT_NEAR(total.delta, 2e-9, 1e-18);
}

TEST(AccountantTest, AdvancedTotalUsesMaxEpsilon) {
  Accountant acc;
  for (int i = 0; i < 50; ++i) acc.Charge("m", {0.05, 1e-10});
  const PrivacyParams adv = acc.AdvancedTotal(1e-8);
  const PrivacyParams expect = AdvancedCompose({0.05, 0.0}, 50, 1e-8);
  EXPECT_NEAR(adv.epsilon, expect.epsilon, 1e-12);
  EXPECT_NEAR(adv.delta, 50 * 1e-10 + 1e-8, 1e-15);
}

TEST(AccountantTest, EmptyLedgerIsFree) {
  Accountant acc;
  EXPECT_EQ(acc.BasicTotal().epsilon, 0.0);
  EXPECT_EQ(acc.AdvancedTotal(1e-9).epsilon, 0.0);
}

TEST(AccountantTest, ReportMentionsLabels) {
  Accountant acc;
  acc.Charge("above_threshold", {0.25, 0.0});
  const std::string report = acc.Report();
  EXPECT_NE(report.find("above_threshold"), std::string::npos);
  EXPECT_NE(report.find("basic total"), std::string::npos);
}

TEST(PrivacyParamsTest, Validation) {
  EXPECT_OK((PrivacyParams{1.0, 0.0}).Validate());
  EXPECT_FALSE((PrivacyParams{0.0, 0.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, 1.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, -0.1}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, 0.0}).ValidateWithPositiveDelta().ok());
  EXPECT_OK((PrivacyParams{1.0, 1e-12}).ValidateWithPositiveDelta());
}

TEST(PrivacyParamsTest, FractionScalesBoth) {
  const PrivacyParams p{2.0, 1e-6};
  const PrivacyParams half = p.Fraction(0.5);
  EXPECT_NEAR(half.epsilon, 1.0, 1e-12);
  EXPECT_NEAR(half.delta, 5e-7, 1e-15);
}

}  // namespace
}  // namespace dpcluster
