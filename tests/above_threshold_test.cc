// Tests for the sparse vector technique (Theorem 4.8).

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/dp/above_threshold.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(AboveThresholdTest, RejectsBadEpsilon) {
  Rng rng(1);
  EXPECT_FALSE(AboveThreshold::Create(rng, 0.0, 10.0).ok());
  EXPECT_FALSE(AboveThreshold::Create(rng, -1.0, 10.0).ok());
}

TEST(AboveThresholdTest, ClearlyAboveFiresClearlyBelowDoesNot) {
  Rng rng(2);
  int false_neg = 0;
  int false_pos = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(auto at, AboveThreshold::Create(rng, 1.0, 100.0));
    ASSERT_OK_AND_ASSIGN(bool low, at.Process(rng, 10.0));
    if (low) ++false_pos;
    if (!at.halted()) {
      ASSERT_OK_AND_ASSIGN(bool high, at.Process(rng, 200.0));
      if (!high) ++false_neg;
    }
  }
  EXPECT_LT(false_pos, trials / 20);
  EXPECT_LT(false_neg, trials / 20);
}

TEST(AboveThresholdTest, HaltsAfterTop) {
  Rng rng(3);
  ASSERT_OK_AND_ASSIGN(auto at, AboveThreshold::Create(rng, 5.0, 0.0));
  ASSERT_OK_AND_ASSIGN(bool top, at.Process(rng, 1000.0));
  EXPECT_TRUE(top);
  EXPECT_TRUE(at.halted());
  EXPECT_FALSE(at.Process(rng, 1000.0).ok());
}

TEST(AboveThresholdTest, CountsQueries) {
  Rng rng(4);
  ASSERT_OK_AND_ASSIGN(auto at, AboveThreshold::Create(rng, 1.0, 1e9));
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(bool top, at.Process(rng, 0.0));
    EXPECT_FALSE(top);
  }
  EXPECT_EQ(at.queries_answered(), 10u);
}

TEST(AboveThresholdTest, AccuracyMarginFormula) {
  const double margin = AboveThreshold::AccuracyMargin(2.0, 100, 0.1);
  EXPECT_NEAR(margin, (8.0 / 2.0) * std::log(2.0 * 100.0 / 0.1), 1e-12);
}

// Theorem 4.8 accuracy: over k rounds, no bot answer for queries above
// threshold + margin, no top answer for queries below threshold - margin.
TEST(AboveThresholdTest, AccuracyMarginHoldsEmpirically) {
  Rng rng(5);
  const double eps = 1.0;
  const std::size_t k = 50;
  const double beta = 0.05;
  const double margin = AboveThreshold::AccuracyMargin(eps, k, beta);
  const double threshold = 0.0;
  int violations = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    ASSERT_OK_AND_ASSIGN(auto at, AboveThreshold::Create(rng, eps, threshold));
    for (std::size_t q = 0; q < k && !at.halted(); ++q) {
      // Feed clearly-below queries; any top is a violation.
      ASSERT_OK_AND_ASSIGN(bool top, at.Process(rng, threshold - margin));
      if (top) ++violations;
    }
  }
  EXPECT_LE(static_cast<double>(violations) / trials, beta);
}

TEST(AboveThresholdTest, ManyBotsThenTop) {
  // The mechanism must survive an arbitrarily long bot prefix — that is the
  // point of sparse vector (GoodCenter's retry loop depends on it).
  Rng rng(6);
  ASSERT_OK_AND_ASSIGN(auto at, AboveThreshold::Create(rng, 2.0, 50.0));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK_AND_ASSIGN(bool top, at.Process(rng, -100.0));
    ASSERT_FALSE(top);
  }
  ASSERT_OK_AND_ASSIGN(bool top, at.Process(rng, 500.0));
  EXPECT_TRUE(top);
}

}  // namespace
}  // namespace dpcluster
