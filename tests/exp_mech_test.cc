// Tests for the exponential mechanism, including the StepFunction sampler that
// RecConcave relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/dp/exponential_mechanism.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(ExponentialMechanismTest, RejectsBadParams) {
  Rng rng(1);
  const std::vector<double> q = {1.0, 2.0};
  EXPECT_FALSE(ExponentialMechanism::SelectIndex(rng, q, 0.0).ok());
  EXPECT_FALSE(ExponentialMechanism::SelectIndex(rng, q, 1.0, 0.0).ok());
  EXPECT_FALSE(ExponentialMechanism::SelectIndex(rng, {}, 1.0).ok());
}

TEST(ExponentialMechanismTest, PrefersHighQuality) {
  Rng rng(2);
  const std::vector<double> q = {0.0, 0.0, 20.0, 0.0};
  int wins = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK_AND_ASSIGN(std::size_t pick,
                         ExponentialMechanism::SelectIndex(rng, q, 2.0));
    wins += (pick == 2);
  }
  EXPECT_GT(wins, 990);
}

TEST(ExponentialMechanismTest, MatchesSoftmaxProbabilities) {
  Rng rng(3);
  const std::vector<double> q = {0.0, 2.0 * std::log(2.0)};  // eps=1 => 1:2 odds.
  int wins = 0;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(std::size_t pick,
                         ExponentialMechanism::SelectIndex(rng, q, 1.0));
    wins += (pick == 1);
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, 2.0 / 3.0, 0.01);
}

TEST(ExponentialMechanismTest, TinyEpsilonIsNearUniform) {
  Rng rng(4);
  const std::vector<double> q = {0.0, 5.0};
  int wins = 0;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(std::size_t pick,
                         ExponentialMechanism::SelectIndex(rng, q, 1e-4));
    wins += (pick == 1);
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, 0.5, 0.02);
}

TEST(ExponentialMechanismTest, StepFunctionMatchesDenseDistribution) {
  // The same quality expressed densely and as pieces must induce the same
  // selection distribution.
  Rng rng_a(5);
  Rng rng_b(5);
  const std::vector<double> dense_vals = {1.0, 1.0, 1.0, 4.0, 4.0, 0.0};
  const StepFunction dense = StepFunction::Dense(dense_vals);
  const StepFunction pieces = StepFunction::FromBreakpoints(
      6, {0, 3, 5}, {1.0, 4.0, 0.0});

  std::vector<int> hist_a(6, 0);
  std::vector<int> hist_b(6, 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(
        std::uint64_t a,
        ExponentialMechanism::SelectFromStepFunction(rng_a, dense, 1.0));
    ASSERT_OK_AND_ASSIGN(
        std::uint64_t b,
        ExponentialMechanism::SelectFromStepFunction(rng_b, pieces, 1.0));
    ++hist_a[a];
    ++hist_b[b];
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(hist_a[i], hist_b[i], trials * 0.015) << "i=" << i;
  }
}

TEST(ExponentialMechanismTest, StepFunctionWeighsPieceLength) {
  // Equal quality everywhere: selection should be uniform over the domain, so
  // a piece of length 9 gets 9x the mass of a piece of length 1.
  Rng rng(6);
  const StepFunction f = StepFunction::FromBreakpoints(10, {0, 9}, {3.0, 3.0});
  int in_long = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(std::uint64_t pick,
                         ExponentialMechanism::SelectFromStepFunction(rng, f, 1.0));
    in_long += (pick < 9);
  }
  EXPECT_NEAR(static_cast<double>(in_long) / trials, 0.9, 0.01);
}

TEST(ExponentialMechanismTest, HugeDomainSmallPieceCount) {
  // A domain of 10^12 indices with 3 pieces must sample instantly and respect
  // the quality.
  Rng rng(7);
  const std::uint64_t domain = 1000000000000ull;
  const StepFunction f = StepFunction::FromBreakpoints(
      domain, {0, 500, 1000}, {0.0, 100.0, 0.0});
  // Piece [500, 1000) has quality 100 but only 500 indices; the last piece has
  // ~10^12 indices at quality 0. With eps=2, exp(100) dwarfs the length ratio.
  ASSERT_OK_AND_ASSIGN(std::uint64_t pick,
                       ExponentialMechanism::SelectFromStepFunction(rng, f, 2.0));
  EXPECT_GE(pick, 500u);
  EXPECT_LT(pick, 1000u);
}

TEST(ExponentialMechanismTest, UtilityMarginFormula) {
  const double margin = ExponentialMechanism::UtilityMargin(2.0, 1.0, 1024, 0.1);
  EXPECT_NEAR(margin, (2.0 / 2.0) * std::log(1024.0 / 0.1), 1e-12);
}

TEST(ExponentialMechanismTest, UtilityHoldsEmpirically) {
  Rng rng(8);
  std::vector<double> q(256);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = static_cast<double>(i % 17);
  }
  const double best = 16.0;
  const double margin = ExponentialMechanism::UtilityMargin(1.0, 1.0, 256, 0.05);
  int bad = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(std::size_t pick,
                         ExponentialMechanism::SelectIndex(rng, q, 1.0));
    if (q[pick] < best - margin) ++bad;
  }
  EXPECT_LE(static_cast<double>(bad) / trials, 0.05);
}

}  // namespace
}  // namespace dpcluster
