// Tests for the synthetic workload generators, metrics, and table printer.

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/geo/ball.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(SyntheticTest, PlantedClusterHoldsTPoints) {
  Rng rng(1);
  PlantedClusterSpec spec;
  spec.n = 1000;
  spec.t = 400;
  spec.dim = 3;
  spec.cluster_radius = 0.05;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  EXPECT_EQ(w.points.size(), 1000u);
  EXPECT_EQ(w.t, 400u);
  // Snapping can push points a hair outside; allow half a grid diagonal.
  Ball slightly = w.planted;
  slightly.radius += w.domain.step() * std::sqrt(3.0);
  EXPECT_GE(CountInBall(w.points, slightly), w.t);
}

TEST(SyntheticTest, PointsAreOnGrid) {
  Rng rng(2);
  PlantedClusterSpec spec;
  spec.n = 200;
  spec.t = 50;
  spec.dim = 2;
  spec.levels = 128;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  for (std::size_t i = 0; i < w.points.size(); ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(w.domain.OnGrid(w.points[i][j]));
    }
  }
}

TEST(SyntheticTest, TwoClustersAreBothPopulated) {
  Rng rng(3);
  const ClusterWorkload w = MakeTwoClusters(rng, 1000, 2, 512, 0.04, 0.3);
  ASSERT_EQ(w.all_planted.size(), 2u);
  for (const Ball& planted : w.all_planted) {
    Ball slightly = planted;
    slightly.radius += w.domain.step() * std::sqrt(2.0);
    EXPECT_GE(CountInBall(w.points, slightly), w.t);
  }
}

TEST(SyntheticTest, GaussianMixtureHasKClusters) {
  Rng rng(4);
  const ClusterWorkload w = MakeGaussianMixture(rng, 1200, 3, 2, 512, 0.02, 0.1);
  EXPECT_EQ(w.all_planted.size(), 3u);
  EXPECT_EQ(w.points.size(), 1200u);
  // Each nominal 2-sigma ball should hold most of its per-cluster mass.
  for (const Ball& planted : w.all_planted) {
    EXPECT_GE(CountInBall(w.points, planted),
              static_cast<std::size_t>(0.7 * static_cast<double>(w.t)));
  }
}

TEST(SyntheticTest, OutlierContamination) {
  Rng rng(5);
  const ClusterWorkload w = MakeOutlierContaminated(rng, 1000, 2, 512, 0.05, 0.9);
  Ball slightly = w.planted;
  slightly.radius += w.domain.step() * std::sqrt(2.0);
  const std::size_t inside = CountInBall(w.points, slightly);
  EXPECT_GE(inside, 900u);
  EXPECT_LT(inside, 1000u);  // Outliers exist.
}

TEST(SyntheticTest, ShellClusterAvoidsItsOwnCenter) {
  Rng rng(6);
  const ClusterWorkload w = MakeShellCluster(rng, 800, 500, 8, 512, 0.2);
  // Few points near the shell's center (adversarial-for-mean workload).
  EXPECT_LT(CountWithin(w.points, w.planted.center, 0.1), 100u);
  Ball shell = w.planted;
  shell.radius += w.domain.step() * std::sqrt(8.0) + 1e-9;
  EXPECT_GE(CountInBall(w.points, shell), w.t);
}

TEST(MetricsTest, EvaluateOnHandMadeExample) {
  const PointSet s = testing_util::MakePointSet(1, {0.0, 0.1, 0.2, 0.9, 1.0});
  Ball found;
  found.center = {0.1};
  found.radius = 0.1;
  ASSERT_OK_AND_ASSIGN(EvalMetrics m, Evaluate(s, 3, found));
  EXPECT_EQ(m.captured, 3u);
  EXPECT_DOUBLE_EQ(m.delta, 0.0);
  EXPECT_DOUBLE_EQ(m.r_opt_lower, 0.1);  // Exact 1D optimum.
  EXPECT_DOUBLE_EQ(m.w_reported, 1.0);
  EXPECT_DOUBLE_EQ(m.tight_radius, 0.1);
  EXPECT_DOUBLE_EQ(m.w_effective, 1.0);
}

TEST(MetricsTest, DeltaCanBeNegativeWhenOverCapturing) {
  const PointSet s = testing_util::MakePointSet(1, {0.0, 0.1, 0.2});
  Ball found;
  found.center = {0.1};
  found.radius = 1.0;
  ASSERT_OK_AND_ASSIGN(EvalMetrics m, Evaluate(s, 2, found));
  EXPECT_EQ(m.captured, 3u);
  EXPECT_DOUBLE_EQ(m.delta, -1.0);
}

TEST(MetricsTest, RejectsDimensionMismatch) {
  const PointSet s = testing_util::MakePointSet(2, {0.0, 0.0});
  Ball found;
  found.center = {0.1};
  EXPECT_FALSE(Evaluate(s, 1, found).ok());
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"method", "delta", "w"});
  table.AddRow({"this work", "12.0", "1.5"});
  table.AddRow({"exp-mech", "3.0", "1.0"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("this work"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header line comes first.
  EXPECT_LT(out.find("method"), out.find("this work"));
}

TEST(TextTableTest, Formatting) {
  EXPECT_EQ(TextTable::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::FmtInt(1234), "1234");
}

}  // namespace
}  // namespace dpcluster
