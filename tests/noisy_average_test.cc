// Tests for NoisyAVG (Algorithm 5 / Appendix A).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(NoisyAverageTest, RejectsBadArgs) {
  Rng rng(1);
  const PointSet s = testing_util::MakePointSet(2, {0.0, 0.0});
  const std::vector<double> c2 = {0.0, 0.0};
  const std::vector<double> c3 = {0.0, 0.0, 0.0};
  EXPECT_FALSE(NoisyAverage(rng, s, c3, 1.0, {1.0, 1e-9}).ok());
  EXPECT_FALSE(NoisyAverage(rng, s, c2, 0.0, {1.0, 1e-9}).ok());
  EXPECT_FALSE(NoisyAverage(rng, s, c2, 1.0, {1.0, 0.0}).ok());
}

TEST(NoisyAverageTest, BotOnEmptySelection) {
  Rng rng(2);
  PointSet s(2);
  const std::vector<double> far = {100.0, 100.0};
  for (int i = 0; i < 50; ++i) s.Add(far);
  const std::vector<double> c = {0.0, 0.0};
  int bots = 0;
  for (int i = 0; i < 100; ++i) {
    auto out = NoisyAverage(rng, s, c, 1.0, {1.0, 1e-9});
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kNoPrivateAnswer);
      ++bots;
    }
  }
  EXPECT_EQ(bots, 100);
}

TEST(NoisyAverageTest, AccurateOnLargeCluster) {
  Rng rng(3);
  const std::vector<double> center = {0.5, 0.5, 0.5};
  PointSet s(3);
  for (int i = 0; i < 5000; ++i) s.Add(SampleBall(rng, center, 0.05));
  ASSERT_OK_AND_ASSIGN(auto out, NoisyAverage(rng, s, center, 0.1, {1.0, 1e-9}));
  EXPECT_LT(Distance(out.average, center), 0.05);
  EXPECT_GT(out.noisy_count, 4000.0);
  EXPECT_GT(out.sigma, 0.0);
}

TEST(NoisyAverageTest, OnlySelectsInsideBall) {
  // Points outside the ball must not drag the average: put a huge far mass
  // and a small near cluster; the result should track the near cluster.
  Rng rng(4);
  PointSet s(2);
  const std::vector<double> near_c = {0.2, 0.2};
  const std::vector<double> far_c = {50.0, 50.0};
  for (int i = 0; i < 2000; ++i) s.Add(SampleBall(rng, near_c, 0.01));
  for (int i = 0; i < 20000; ++i) s.Add(SampleBall(rng, far_c, 0.01));
  ASSERT_OK_AND_ASSIGN(auto out, NoisyAverage(rng, s, near_c, 0.5, {1.0, 1e-9}));
  EXPECT_LT(Distance(out.average, near_c), 0.1);
}

TEST(NoisyAverageTest, SigmaShrinksWithClusterSize) {
  Rng rng(5);
  const std::vector<double> c = {0.0};
  PointSet small(1);
  PointSet big(1);
  for (int i = 0; i < 200; ++i) small.Add(std::vector<double>{0.0});
  for (int i = 0; i < 20000; ++i) big.Add(std::vector<double>{0.0});
  ASSERT_OK_AND_ASSIGN(auto out_small, NoisyAverage(rng, small, c, 1.0, {1.0, 1e-9}));
  ASSERT_OK_AND_ASSIGN(auto out_big, NoisyAverage(rng, big, c, 1.0, {1.0, 1e-9}));
  EXPECT_GT(out_small.sigma, 10.0 * out_big.sigma);
}

TEST(NoisyAverageTest, SigmaBoundFromObservationA1) {
  Rng rng(6);
  const std::vector<double> c = {0.0};
  PointSet s(1);
  const int m = 10000;
  for (int i = 0; i < m; ++i) s.Add(std::vector<double>{0.1});
  const double eps = 1.0;
  const double delta = 1e-9;
  const double bound = NoisyAverageSigmaBound(1.0, eps, delta, m);
  int exceed = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(auto out, NoisyAverage(rng, s, c, 1.0, {eps, delta}));
    if (out.sigma > bound) ++exceed;
  }
  // Observation A.1 holds with probability >= 1 - beta for m >= 16/eps ln(2/(beta delta)).
  EXPECT_LE(exceed, trials / 10);
}

TEST(NoisyAverageTest, RecentersAtCallerCenter) {
  // Observation A.2: the mechanism must work for clusters far from the origin.
  Rng rng(7);
  const std::vector<double> c = {1000.0, -500.0};
  PointSet s(2);
  for (int i = 0; i < 5000; ++i) s.Add(SampleBall(rng, c, 0.01));
  ASSERT_OK_AND_ASSIGN(auto out, NoisyAverage(rng, s, c, 0.1, {1.0, 1e-9}));
  EXPECT_LT(Distance(out.average, c), 0.05);
}

}  // namespace
}  // namespace dpcluster
