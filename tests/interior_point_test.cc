// Tests for the IntPoint reduction (Algorithm 3 / Theorem 5.3).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dpcluster/core/interior_point.h"
#include "test_util.h"

namespace dpcluster {
namespace {

InteriorPointOptions TestOptions(double eps) {
  InteriorPointOptions o;
  o.params = {eps, 1e-8};
  o.beta = 0.1;
  return o;
}

std::vector<double> SnappedUniform(Rng& rng, const GridDomain& domain,
                                   std::size_t m) {
  std::vector<double> data(m);
  for (double& x : data) x = domain.Snap(rng.NextDouble());
  return data;
}

TEST(InteriorPointTest, ValidatesArguments) {
  Rng rng(1);
  const GridDomain domain(1024, 1);
  const std::vector<double> tiny = {0.1, 0.2};
  EXPECT_FALSE(InteriorPoint(rng, tiny, domain, TestOptions(4.0)).ok());
  const GridDomain wrong(64, 2);
  const std::vector<double> data(100, 0.5);
  EXPECT_FALSE(InteriorPoint(rng, data, wrong, TestOptions(4.0)).ok());
}

TEST(InteriorPointTest, FindsInteriorPointOnUniformData) {
  Rng rng(2);
  const GridDomain domain(1024, 1);
  int good = 0;
  const int trials = 5;
  for (int trial = 0; trial < trials; ++trial) {
    const auto data = SnappedUniform(rng, domain, 1500);
    const double lo = *std::min_element(data.begin(), data.end());
    const double hi = *std::max_element(data.begin(), data.end());
    ASSERT_OK_AND_ASSIGN(InteriorPointResult result,
                         InteriorPoint(rng, data, domain, TestOptions(8.0)));
    if (result.point >= lo && result.point <= hi) ++good;
  }
  EXPECT_GE(good, trials - 1);
}

TEST(InteriorPointTest, HandlesDuplicateMass) {
  Rng rng(3);
  const GridDomain domain(1024, 1);
  std::vector<double> data(1200, 0.5);  // All identical: 0.5 is interior.
  ASSERT_OK_AND_ASSIGN(InteriorPointResult result,
                       InteriorPoint(rng, data, domain, TestOptions(8.0)));
  EXPECT_NEAR(result.point, 0.5, 0.05);
}

TEST(InteriorPointTest, BimodalData) {
  Rng rng(4);
  const GridDomain domain(1024, 1);
  std::vector<double> data;
  for (int i = 0; i < 700; ++i) data.push_back(domain.Snap(0.1 + 0.02 * rng.NextDouble()));
  for (int i = 0; i < 700; ++i) data.push_back(domain.Snap(0.9 + 0.02 * rng.NextDouble()));
  ASSERT_OK_AND_ASSIGN(InteriorPointResult result,
                       InteriorPoint(rng, data, domain, TestOptions(8.0)));
  EXPECT_GE(result.point, 0.1 - 1e-9);
  EXPECT_LE(result.point, 0.92 + 1e-9);
}

TEST(InteriorPointTest, ReportsInnerDiagnostics) {
  Rng rng(5);
  const GridDomain domain(512, 1);
  const auto data = SnappedUniform(rng, domain, 1000);
  ASSERT_OK_AND_ASSIGN(InteriorPointResult result,
                       InteriorPoint(rng, data, domain, TestOptions(8.0)));
  EXPECT_GE(result.candidates, 1u);
  EXPECT_FALSE(result.cluster.ball.center.empty());
}

}  // namespace
}  // namespace dpcluster
