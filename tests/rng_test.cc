// Tests for the xoshiro256++ generator wrapper.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dpcluster/random/rng.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenZeroNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDoubleOpenZero();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  const double mean = testing_util::SampleMean(
      200000, [&] { return rng.NextDouble(); });
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64CoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextUint64RoughlyUniform) {
  Rng rng(13);
  std::vector<int> hist(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++hist[rng.NextUint64(8)];
  for (int h : hist) {
    EXPECT_NEAR(static_cast<double>(h), trials / 8.0, trials * 0.01);
  }
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream should not simply replay the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == child());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  (void)rng();
}

}  // namespace
}  // namespace dpcluster
