// Tests for GoodRadius (Algorithm 1, Lemmas 3.6 / 4.6): the returned radius
// must be within a constant factor of r_opt and must support a ~t-heavy ball.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/core/good_radius.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// Largest ball count achievable at radius r with centers at input points.
std::size_t BestCountAtRadius(const PointSet& s, double r) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    best = std::max(best, CountWithin(s, s[i], r));
  }
  return best;
}

GoodRadiusOptions TestOptions(double eps) {
  GoodRadiusOptions o;
  o.params = {eps, 1e-8};
  o.beta = 0.1;
  return o;
}

TEST(GoodRadiusTest, ValidatesArguments) {
  Rng rng(1);
  const GridDomain domain(64, 2);
  const PointSet empty(2);
  EXPECT_FALSE(GoodRadius(rng, empty, 1, domain, TestOptions(1.0)).ok());
  const PointSet s = testing_util::MakePointSet(2, {0.5, 0.5});
  EXPECT_FALSE(GoodRadius(rng, s, 0, domain, TestOptions(1.0)).ok());
  EXPECT_FALSE(GoodRadius(rng, s, 2, domain, TestOptions(1.0)).ok());
  const PointSet wrong = testing_util::MakePointSet(1, {0.5});
  EXPECT_FALSE(GoodRadius(rng, wrong, 1, domain, TestOptions(1.0)).ok());
}

TEST(GoodRadiusTest, GammaShrinksWithEpsilonAndPaperConstantsAreHuge) {
  const GridDomain domain(1024, 2);
  GoodRadiusOptions o1 = TestOptions(1.0);
  GoodRadiusOptions o4 = TestOptions(4.0);
  EXPECT_GT(GoodRadiusGamma(domain, o1), GoodRadiusGamma(domain, o4));
  GoodRadiusOptions paper = TestOptions(1.0);
  paper.paper_constants = true;
  EXPECT_GT(GoodRadiusGamma(domain, paper), GoodRadiusGamma(domain, o1) * 100);
}

class GoodRadiusEngineTest
    : public ::testing::TestWithParam<GoodRadiusOptions::Engine> {};

TEST_P(GoodRadiusEngineTest, FindsRadiusNearOptimalOnPlantedCluster) {
  Rng rng(7);
  PlantedClusterSpec spec;
  spec.n = 700;
  spec.t = 320;
  spec.dim = 2;
  spec.levels = 1024;
  spec.cluster_radius = 0.04;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  GoodRadiusOptions options = TestOptions(2.0);
  options.engine = GetParam();
  const double gamma = GoodRadiusGamma(w.domain, options);
  ASSERT_LT(4.0 * gamma, static_cast<double>(spec.t))
      << "test parameters must satisfy t > 4*Gamma (gamma=" << gamma << ")";

  int radius_ok = 0;
  int count_ok = 0;
  const int trials = 5;
  for (int trial = 0; trial < trials; ++trial) {
    ASSERT_OK_AND_ASSIGN(GoodRadiusResult result,
                         GoodRadius(rng, w.points, w.t, w.domain, options));
    // (2) r <= 4 r_opt, with grid-step slack. r_opt <= 2-approx radius.
    ASSERT_OK_AND_ASSIGN(Ball two, TwoApproxSmallestBall(w.points, w.t));
    const double slack = 2.0 * w.domain.RadiusFromIndex(1);
    if (result.radius <= 4.0 * two.radius + slack) ++radius_ok;
    // (1) some ball of radius r holds >= t - 4*Gamma - noise points.
    const double floor = static_cast<double>(w.t) - 4.0 * result.gamma -
                         (8.0 / options.params.epsilon) * std::log(20.0);
    if (static_cast<double>(BestCountAtRadius(w.points, result.radius)) >=
        floor) {
      ++count_ok;
    }
  }
  EXPECT_GE(radius_ok, trials - 1);
  EXPECT_GE(count_ok, trials - 1);
}

TEST_P(GoodRadiusEngineTest, ZeroRadiusClusterDetected) {
  Rng rng(8);
  const GridDomain domain(1024, 2);
  PointSet s(2);
  const std::vector<double> dup = {0.5, 0.5};
  for (int i = 0; i < 500; ++i) s.Add(dup);
  std::vector<double> p(2);
  for (int i = 0; i < 100; ++i) {
    p[0] = domain.Snap(rng.NextDouble());
    p[1] = domain.Snap(rng.NextDouble());
    s.Add(p);
  }
  GoodRadiusOptions options = TestOptions(2.0);
  options.engine = GetParam();
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult result,
                       GoodRadius(rng, s, 400, domain, options));
  // Either the shortcut fires or the returned radius is (near) zero.
  EXPECT_LE(result.radius, 4.0 * domain.RadiusFromIndex(2));
}

INSTANTIATE_TEST_SUITE_P(Engines, GoodRadiusEngineTest,
                         ::testing::Values(GoodRadiusOptions::Engine::kRecConcave,
                                           GoodRadiusOptions::Engine::kSparseVector));

TEST(GoodRadiusTest, PaperStructureRecursionStillWorks) {
  // base_domain_size 32 forces the log*-style recursion; utility is looser
  // (bigger Gamma) but the radius bound must still hold.
  Rng rng(9);
  PlantedClusterSpec spec;
  spec.n = 900;
  spec.t = 700;  // Large t to clear the bigger Gamma.
  spec.dim = 2;
  spec.levels = 256;
  spec.cluster_radius = 0.05;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  GoodRadiusOptions options = TestOptions(8.0);
  options.rec_concave.base_domain_size = 32;
  const double gamma = GoodRadiusGamma(w.domain, options);
  ASSERT_LT(4.0 * gamma, static_cast<double>(spec.t));
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult result,
                       GoodRadius(rng, w.points, w.t, w.domain, options));
  ASSERT_OK_AND_ASSIGN(Ball two, TwoApproxSmallestBall(w.points, w.t));
  EXPECT_LE(result.radius, 4.0 * two.radius + 2.0 * w.domain.RadiusFromIndex(1));
}

TEST(GoodRadiusTest, ProfileCapSurfacesAsResourceExhausted) {
  Rng rng(10);
  const GridDomain domain(64, 2);
  PointSet s = testing_util::UniformCube(rng, 50, 2);
  domain.SnapAll(s);
  GoodRadiusOptions options = TestOptions(1.0);
  options.max_profile_points = 10;
  EXPECT_EQ(GoodRadius(rng, s, 5, domain, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GoodRadiusTest, ValidatesSubsampleGridCapFactor) {
  GoodRadiusOptions options = TestOptions(1.0);
  EXPECT_OK(options.Validate());
  options.subsample_grid_cap_factor = 1.0;  // 1 disables the raise.
  EXPECT_OK(options.Validate());
  options.subsample_grid_cap_factor = 0.5;
  EXPECT_FALSE(options.Validate().ok());
  options.subsample_grid_cap_factor = -3.0;
  EXPECT_FALSE(options.Validate().ok());
}

// The index overload must release exactly the bytes of the PointSet entry
// point — on the full data and on a post-deletion active view — for both
// engines and both event generators.
TEST(GoodRadiusTest, IndexOverloadBitIdenticalToPointSet) {
  Rng data_rng(11);
  PlantedClusterSpec spec;
  spec.n = 600;
  spec.t = 150;
  spec.dim = 2;
  spec.levels = 1u << 10;
  spec.cluster_radius = 0.03;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);

  ASSERT_OK_AND_ASSIGN(IndexedDataset index,
                       IndexedDataset::Create(w.points, w.domain));
  // Deactivate a scattered third so the index serves a genuine subset.
  std::vector<std::uint32_t> removed;
  for (std::size_t i = 0; i < w.points.size(); i += 3) {
    removed.push_back(static_cast<std::uint32_t>(i));
  }
  index.Remove(removed);
  const PointSet view = index.ActiveView();
  const std::size_t t = 100;

  for (const auto engine : {GoodRadiusOptions::Engine::kRecConcave,
                            GoodRadiusOptions::Engine::kSparseVector}) {
    for (const auto profile_index :
         {ProfileIndex::kAuto, ProfileIndex::kGrid, ProfileIndex::kExact}) {
      GoodRadiusOptions options = TestOptions(4.0);
      options.engine = engine;
      options.profile_index = profile_index;
      Rng rng_view(77);
      Rng rng_index(77);
      ASSERT_OK_AND_ASSIGN(GoodRadiusResult want,
                           GoodRadius(rng_view, view, t, w.domain, options));
      ASSERT_OK_AND_ASSIGN(GoodRadiusResult got,
                           GoodRadius(rng_index, index, t, options));
      const std::string context =
          std::string(" engine=") +
          (engine == GoodRadiusOptions::Engine::kRecConcave ? "rc" : "sv") +
          " profile_index=" +
          std::string(ProfileIndexName(profile_index));
      EXPECT_EQ(got.radius, want.radius) << context;
      EXPECT_EQ(got.grid_index, want.grid_index) << context;
      EXPECT_EQ(got.gamma, want.gamma) << context;
      EXPECT_EQ(got.zero_radius_shortcut, want.zero_radius_shortcut)
          << context;
    }
  }
}

// With the grid profile active, the raised subsample cap can swallow the
// whole input: the run is then bit-identical to an uncapped (no-subsample)
// run — only the cap moved, no rows were dropped.
TEST(GoodRadiusTest, RaisedSubsampleCapKeepsAllRowsWhenGridProfileIsCheap) {
  Rng data_rng(12);
  PlantedClusterSpec spec;
  spec.n = 600;
  spec.t = 60;  // Small t: the grid profile path is active at n=600.
  spec.dim = 2;
  spec.levels = 1u << 10;
  spec.cluster_radius = 0.02;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);

  GoodRadiusOptions raised = TestOptions(4.0);
  raised.max_profile_points = 128;  // Below n: subsampling would trigger.
  raised.subsample_large_inputs = true;
  raised.subsample_grid_cap_factor = 10.0;  // 1280 >= n: keeps every row.

  GoodRadiusOptions uncapped = TestOptions(4.0);
  uncapped.max_profile_points = 4096;

  Rng rng_raised(99);
  Rng rng_uncapped(99);
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult got,
                       GoodRadius(rng_raised, w.points, w.t, w.domain, raised));
  ASSERT_OK_AND_ASSIGN(
      GoodRadiusResult want,
      GoodRadius(rng_uncapped, w.points, w.t, w.domain, uncapped));
  EXPECT_EQ(got.radius, want.radius);
  EXPECT_EQ(got.grid_index, want.grid_index);

  // Factor 1 restores the pre-raise behavior: a genuine 128-row subsample
  // (different RNG consumption, and it must still succeed).
  GoodRadiusOptions legacy = raised;
  legacy.subsample_grid_cap_factor = 1.0;
  Rng rng_legacy(99);
  EXPECT_OK(GoodRadius(rng_legacy, w.points, w.t, w.domain, legacy).status());
}

}  // namespace
}  // namespace dpcluster
