// Tests for the iterated k-cluster heuristic (Observation 3.5).

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/core/k_cluster.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

KClusterOptions TestOptions(double eps, std::size_t k) {
  KClusterOptions o;
  o.params = {eps, 1e-8};
  o.beta = 0.2;
  o.k = k;
  return o;
}

TEST(KClusterOptionsTest, Validation) {
  KClusterOptions o = TestOptions(1.0, 2);
  EXPECT_OK(o.Validate());
  o.k = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0, 2);
  o.params.delta = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(KClusterOptionsTest, RejectsOutOfRangeFractions) {
  // refine_fraction must lie in [0,1): 1 would starve the per-round solver.
  KClusterOptions o = TestOptions(1.0, 2);
  o.refine_fraction = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o.refine_fraction = -0.1;
  EXPECT_FALSE(o.Validate().ok());
  o.refine_fraction = 0.0;  // disabled refinement is fine
  EXPECT_OK(o.Validate());

  // The nested 1-cluster budget split must lie in (0,1).
  o = TestOptions(1.0, 2);
  o.one_cluster.radius_budget_fraction = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o.one_cluster.radius_budget_fraction = 1.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(KClusterTest, CoversTwoPlantedClusters) {
  Rng rng(1);
  const ClusterWorkload w = MakeTwoClusters(rng, 2000, 2, 1024, 0.015, 0.45);
  KClusterOptions options = TestOptions(16.0, 2);
  // Each round should swallow one whole planted cluster (t = cluster size) so
  // the refined removal ball covers it.
  options.per_round_t = w.t;
  ASSERT_OK_AND_ASSIGN(KClusterResult result,
                       KCluster(rng, w.points, w.domain, options));
  ASSERT_GE(result.rounds.size(), 1u);
  // Most points should be covered by the union of the found balls.
  EXPECT_LT(result.uncovered, w.points.size() / 2);
}

TEST(KClusterTest, RoundsFindDistinctClusters) {
  Rng rng(2);
  const ClusterWorkload w = MakeTwoClusters(rng, 2400, 2, 1024, 0.015, 0.48);
  KClusterOptions options = TestOptions(16.0, 2);
  options.per_round_t = w.t * 3 / 4;
  ASSERT_OK_AND_ASSIGN(KClusterResult result,
                       KCluster(rng, w.points, w.domain, options));
  if (result.rounds.size() == 2) {
    const auto& c0 = result.rounds[0].ball.center;
    const auto& c1 = result.rounds[1].ball.center;
    // The two found centers should straddle the two planted balls at 0.25^d
    // and 0.75^d, i.e. be far apart.
    EXPECT_GT(Distance(c0, c1), 0.3);
  }
}

TEST(KClusterTest, BestEffortSkipsImpossibleRounds) {
  Rng rng(3);
  // A single tight cluster of 900 points; ask for k = 3 rounds of 900 each:
  // round 1 eats the cluster, later rounds lack points and must be skipped
  // (not fail the whole call).
  const GridDomain domain(1024, 2);
  PointSet s(2);
  for (int i = 0; i < 900; ++i) {
    s.Add(SampleBall(rng, std::vector<double>{0.5, 0.5}, 0.015));
  }
  domain.SnapAll(s);
  KClusterOptions options = TestOptions(24.0, 3);
  options.per_round_t = 900;
  options.best_effort = true;
  ASSERT_OK_AND_ASSIGN(KClusterResult result, KCluster(rng, s, domain, options));
  EXPECT_GE(result.rounds.size(), 1u);
  EXPECT_LE(result.rounds.size(), 3u);
}

TEST(KClusterTest, AdvancedCompositionGivesLargerPerRoundBudget) {
  // Not a behavioural test — verifies the budget arithmetic through the
  // resulting Gamma of the radius stage (smaller with advanced composition
  // for large k).
  // Advanced composition only overtakes basic once k >> ln(1/delta).
  const std::size_t k = 4096;
  KClusterOptions basic = TestOptions(2.0, k);
  KClusterOptions advanced = TestOptions(2.0, k);
  advanced.advanced_composition = true;

  const double eps_basic = basic.params.epsilon / static_cast<double>(k);
  const double slack = advanced.params.delta / 2.0;
  const double eps_adv =
      InverseAdvancedEpsilon(advanced.params.epsilon, k, slack);
  EXPECT_GT(eps_adv, eps_basic);
}

}  // namespace
}  // namespace dpcluster
