// Tests for the accuracy evaluation harness (data/accuracy.h) and the
// scenario-aware Request helpers (api/scenario.h): scoring against ground
// truth, the sweep runner through Solver::RunAll, and the JSON artifact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dpcluster/api/scenario.h"
#include "dpcluster/data/accuracy.h"
#include "dpcluster/data/registry.h"
#include "test_util.h"

namespace dpcluster {
namespace {

ScenarioInstance TinyInstance() {
  Rng rng(21);
  ScenarioSpec spec;
  spec.scenario = "planted_cluster";
  spec.n = 300;
  spec.dim = 2;
  spec.levels = 1u << 9;
  auto instance = GenerateScenario(rng, spec);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

// ------------------------------------------------------ request helpers ---

TEST(ScenarioRequestTest, FillsTheRequestFromTheInstance) {
  const ScenarioInstance instance = TinyInstance();
  const Request request = ScenarioRequest(instance, "one_cluster", {2.0, 1e-7});
  EXPECT_EQ(request.algorithm, "one_cluster");
  EXPECT_EQ(request.data.size(), instance.points.size());
  ASSERT_TRUE(request.domain.has_value());
  EXPECT_EQ(request.domain->levels(), instance.domain.levels());
  EXPECT_EQ(request.t, instance.t);
  EXPECT_DOUBLE_EQ(request.budget.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(request.budget.delta, 1e-7);
  EXPECT_EQ(request.label, "planted_cluster/one_cluster/eps2");
  EXPECT_OK(request.Validate());
}

TEST(ScenarioRequestTest, GridIsAlgorithmsMajor) {
  const ScenarioInstance instance = TinyInstance();
  const std::vector<std::string> algorithms = {"one_cluster", "nonprivate"};
  const std::vector<double> epsilons = {0.5, 1.0, 2.0};
  const auto requests =
      ScenarioRequestGrid(instance, algorithms, epsilons, 1e-7);
  ASSERT_EQ(requests.size(), 6u);
  EXPECT_EQ(requests[0].algorithm, "one_cluster");
  EXPECT_DOUBLE_EQ(requests[0].budget.epsilon, 0.5);
  EXPECT_EQ(requests[2].algorithm, "one_cluster");
  EXPECT_DOUBLE_EQ(requests[2].budget.epsilon, 2.0);
  EXPECT_EQ(requests[3].algorithm, "nonprivate");
  EXPECT_DOUBLE_EQ(requests[3].budget.epsilon, 0.5);
}

// --------------------------------------------------------------- scoring ---

TEST(ScoreResponseTest, PerfectBallScoresPerfectly) {
  const ScenarioInstance instance = TinyInstance();
  Response response;
  response.ball = instance.primary();
  // Give the true ball a safety margin for grid snapping.
  response.ball.radius += instance.domain.step() * 2.0;
  response.charged = {1.0, 1e-7};
  ASSERT_OK_AND_ASSIGN(AccuracyMetrics metrics,
                       ScoreResponse(instance, response));
  EXPECT_NEAR(metrics.coverage, 1.0, 1e-9);
  EXPECT_NEAR(metrics.center_offset, 0.0, 1e-9);
  // The reference radius is at most the true radius (+ snap), so the ratio is
  // close to 1 from above.
  EXPECT_GE(metrics.radius_ratio, 1.0);
  EXPECT_LE(metrics.radius_ratio, 2.0);
  EXPECT_DOUBLE_EQ(metrics.eps_spent, 1.0);
  EXPECT_DOUBLE_EQ(metrics.delta_spent, 1e-7);
}

TEST(ScoreResponseTest, MissedClusterScoresZeroCoverage) {
  const ScenarioInstance instance = TinyInstance();
  Response response;
  // A far-away corner ball of the same radius: no cluster points inside.
  response.ball.center.assign(instance.points.dim(), 0.0);
  response.ball.radius = 1e-6;
  ASSERT_OK_AND_ASSIGN(AccuracyMetrics metrics,
                       ScoreResponse(instance, response));
  EXPECT_DOUBLE_EQ(metrics.coverage, 0.0);
  EXPECT_GT(metrics.center_offset, 1.0);
}

TEST(ScoreResponseTest, RejectsDimensionMismatch) {
  const ScenarioInstance instance = TinyInstance();
  Response response;
  response.ball.center = {0.5};  // 1D ball against a 2D instance
  EXPECT_FALSE(ScoreResponse(instance, response).ok());
}

// ----------------------------------------------------------------- sweep ---

TEST(AccuracySweepTest, RunsTheFullGridThroughTheSolver) {
  SweepConfig config;
  config.scenarios = {"planted_cluster", "near_tie"};
  config.algorithms = {"nonprivate", "noisy_mean_baseline"};
  config.epsilons = {1.0};
  config.ns = {256};
  config.dims = {2};
  config.levels = 1u << 9;
  config.trials = 2;
  ASSERT_OK_AND_ASSIGN(std::vector<SweepCell> cells, RunAccuracySweep(config));
  ASSERT_EQ(cells.size(), 4u);  // 2 scenarios x 2 algorithms x 1 epsilon
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.trials, 2u);
    EXPECT_EQ(cell.n, 256u);
    EXPECT_EQ(cell.dim, 2u);
  }
  // The non-private reference never fails and lands near the optimum on the
  // easy planted workload.
  const SweepCell* cell = FindCell(cells, "planted_cluster", "nonprivate", 1.0);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->failures, 0u);
  EXPECT_GT(cell->median.coverage, 0.5);
  EXPECT_LT(cell->median.radius_ratio, 3.0);
  EXPECT_DOUBLE_EQ(cell->median.eps_spent, 0.0);  // charges no budget
}

TEST(AccuracySweepTest, UtilityMetricsAreSeedDeterministic) {
  SweepConfig config;
  config.scenarios = {"annulus"};
  config.algorithms = {"noisy_mean_baseline"};
  config.epsilons = {1.0};
  config.ns = {200};
  config.dims = {2};
  config.levels = 1u << 9;
  config.trials = 2;
  ASSERT_OK_AND_ASSIGN(std::vector<SweepCell> a, RunAccuracySweep(config));
  ASSERT_OK_AND_ASSIGN(std::vector<SweepCell> b, RunAccuracySweep(config));
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].median.radius_ratio, b[0].median.radius_ratio);
  EXPECT_EQ(a[0].median.coverage, b[0].median.coverage);
  EXPECT_EQ(a[0].median.center_offset, b[0].median.center_offset);
}

TEST(AccuracySweepTest, UnknownAlgorithmCountsAsCellFailures) {
  SweepConfig config;
  config.scenarios = {"planted_cluster"};
  config.algorithms = {"no_such_algorithm"};
  config.epsilons = {1.0};
  config.ns = {128};
  config.dims = {1};
  config.levels = 1u << 9;
  config.trials = 2;
  ASSERT_OK_AND_ASSIGN(std::vector<SweepCell> cells, RunAccuracySweep(config));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].failures, 2u);
  EXPECT_NE(cells[0].note.find("no_such_algorithm"), std::string::npos);
  EXPECT_TRUE(std::isnan(cells[0].median.radius_ratio));
}

TEST(AccuracySweepTest, RejectsEmptyGrids) {
  SweepConfig config;
  config.algorithms.clear();
  EXPECT_FALSE(RunAccuracySweep(config).ok());
  config = SweepConfig();
  config.epsilons = {-1.0};
  EXPECT_FALSE(RunAccuracySweep(config).ok());
  config = SweepConfig();
  config.trials = 0;
  EXPECT_FALSE(RunAccuracySweep(config).ok());
}

// ------------------------------------------------------------------ JSON ---

TEST(AccuracyJsonTest, WritesConfigAndCells) {
  SweepConfig config;
  config.scenarios = {"planted_cluster"};
  config.algorithms = {"nonprivate"};
  config.epsilons = {1.0};
  config.ns = {128};
  config.dims = {2};
  config.levels = 1u << 9;
  config.trials = 2;
  ASSERT_OK_AND_ASSIGN(std::vector<SweepCell> cells, RunAccuracySweep(config));

  const std::string path =
      ::testing::TempDir() + "/dpcluster_accuracy_test.json";
  ASSERT_TRUE(WriteAccuracyJson(path, config, cells));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"config\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"planted_cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"nonprivate\""), std::string::npos);
  EXPECT_NE(json.find("\"radius_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"center_offset\""), std::string::npos);
  // Valid JSON numbers only: NaN must have been emitted as null.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpcluster
