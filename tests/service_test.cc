// End-to-end tests for the dpcluster daemon: routing, the per-(tenant,
// dataset) budget ledgers (a budget-exhausted tenant gets the structured
// 429 while other tenants keep solving), the keyed index cache, concurrent
// HTTP clients against a live server, queue-full shedding, and graceful
// shutdown. ClusterService::Handle is driven directly where sockets add
// nothing; HttpServer + the loopback client cover the socket path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dpcluster/api/algorithm.h"
#include "dpcluster/api/registry.h"
#include "dpcluster/parallel/bounded_queue.h"
#include "dpcluster/random/rng.h"
#include "dpcluster/service/http_client.h"
#include "dpcluster/service/http_server.h"
#include "dpcluster/service/json.h"
#include "dpcluster/service/protocol.h"
#include "dpcluster/service/service.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using std::chrono::milliseconds;

/// A planted 2-d cluster every built-in under test answers reliably at
/// eps = 8 (the bench traffic shape, seeds verified there).
ClusterWorkload SmallWorkload(std::uint64_t seed = 7) {
  Rng rng(seed);
  PlantedClusterSpec spec;
  spec.n = 512;
  spec.t = 192;
  spec.dim = 2;
  spec.levels = 1u << 10;
  spec.cluster_radius = 0.02;
  return MakePlantedCluster(rng, spec);
}

std::string SolveBody(const ClusterWorkload& workload,
                      const std::string& algorithm, const std::string& tenant,
                      const std::string& dataset, double epsilon = 8.0,
                      std::uint64_t seed = 99) {
  WireRequest wire;
  wire.tenant = tenant;
  wire.dataset = dataset;
  wire.seed = seed;
  wire.request.algorithm = algorithm;
  wire.request.data = workload.points;
  wire.request.domain = workload.domain;
  wire.request.t = workload.t;
  wire.request.budget = {epsilon, 1e-9};
  return WireRequestToJson(wire).Encode();
}

/// Options with a budget far above anything a test requests; budget
/// admission has its own tests.
ServiceOptions UnmeteredOptions() {
  ServiceOptions options;
  options.default_budget = {1e9, 0.5};
  return options;
}

JsonValue MustParse(const std::string& body) {
  auto parsed = JsonValue::Parse(body);
  EXPECT_TRUE(parsed.ok()) << body;
  return parsed.ok() ? *std::move(parsed) : JsonValue::Null();
}

// --- Routing --------------------------------------------------------------

TEST(ServiceRoutingTest, HealthzReportsServingState) {
  ClusterService service;
  const ServiceReply reply = service.Handle("GET", "/healthz", "");
  EXPECT_EQ(reply.http_status, 200);
  JsonValue body = MustParse(reply.body);
  EXPECT_TRUE(body.Find("ok")->AsBool());
  EXPECT_EQ(body.Find("status")->AsString(), "serving");
}

TEST(ServiceRoutingTest, AlgorithmsListsTheRegistry) {
  ClusterService service;
  const ServiceReply reply = service.Handle("GET", "/v1/algorithms", "");
  ASSERT_EQ(reply.http_status, 200);
  JsonValue body = MustParse(reply.body);
  const JsonValue* algorithms = body.Find("algorithms");
  ASSERT_NE(algorithms, nullptr);
  std::vector<std::string> names;
  for (const JsonValue& item : algorithms->items()) {
    names.push_back(item.AsString());
  }
  for (const char* expected :
       {"one_cluster", "k_cluster", "interior_point", "outlier_screen",
        "sample_aggregate", "exp_mech_baseline", "noisy_mean_baseline",
        "nonprivate", "threshold_release_1d"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ServiceRoutingTest, UnknownRouteAndWrongMethodAreStructuredErrors) {
  ClusterService service;
  const ServiceReply missing = service.Handle("GET", "/v1/nope", "");
  EXPECT_EQ(missing.http_status, 404);
  EXPECT_EQ(MustParse(missing.body).Find("error")->Find("code")->AsString(),
            "RouteNotFound");
  const ServiceReply wrong_method = service.Handle("GET", "/v1/solve", "{}");
  EXPECT_EQ(wrong_method.http_status, 405);
  EXPECT_EQ(
      MustParse(wrong_method.body).Find("error")->Find("code")->AsString(),
      "MethodNotAllowed");
}

// --- Budget exhaustion ----------------------------------------------------

TEST(ServiceBudgetTest, ExhaustedTenantGets429WhileOthersSucceed) {
  ServiceOptions options;
  options.default_budget = {2.0, 1e-6};
  ClusterService service(options);
  const ClusterWorkload workload = SmallWorkload();

  // Tenant A's first solve fits (1.5 of 2.0) and charges the full request.
  const std::string body_a =
      SolveBody(workload, "nonprivate", "alice", "shared/data", 1.5);
  EXPECT_EQ(service.Handle("POST", "/v1/solve", body_a).http_status, 200);
  EXPECT_DOUBLE_EQ(service.SpentBy("alice", "shared/data").epsilon, 1.5);

  // The second identical request cannot fit: structured 429 with the
  // ledger's cap / spent / remaining and the attempted charge.
  const ServiceReply rejected = service.Handle("POST", "/v1/solve", body_a);
  EXPECT_EQ(rejected.http_status, 429);
  JsonValue body = MustParse(rejected.body);
  EXPECT_FALSE(body.Find("ok")->AsBool());
  EXPECT_EQ(body.Find("error")->Find("code")->AsString(), "BudgetExhausted");
  const JsonValue* budget = body.Find("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->Find("cap")->Find("epsilon")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(budget->Find("spent")->Find("epsilon")->AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(budget->Find("remaining")->Find("epsilon")->AsDouble(),
                   0.5);
  EXPECT_DOUBLE_EQ(body.Find("requested")->Find("epsilon")->AsDouble(), 1.5);
  // The rejection charged nothing.
  EXPECT_DOUBLE_EQ(service.SpentBy("alice", "shared/data").epsilon, 1.5);

  // Tenant B on the same dataset key has its own ledger and still solves;
  // so does tenant A on a different dataset.
  EXPECT_EQ(service
                .Handle("POST", "/v1/solve",
                        SolveBody(workload, "nonprivate", "bob",
                                  "shared/data", 1.5))
                .http_status,
            200);
  EXPECT_EQ(service
                .Handle("POST", "/v1/solve",
                        SolveBody(workload, "nonprivate", "alice",
                                  "other/data", 1.5))
                .http_status,
            200);

  const ClusterService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.solved, 3u);
  EXPECT_EQ(stats.budget_rejections, 1u);
}

TEST(ServiceBudgetTest, TenantOverrideBeatsTheDefaultCap) {
  ServiceOptions options;
  options.default_budget = {1.0, 1e-6};
  options.tenant_budgets["vip"] = {20.0, 1e-6};
  ClusterService service(options);
  const ClusterWorkload workload = SmallWorkload();
  // eps = 8 overdraws the 1.0 default but fits the vip override.
  EXPECT_EQ(service
                .Handle("POST", "/v1/solve",
                        SolveBody(workload, "nonprivate", "vip", "d", 8.0))
                .http_status,
            200);
  EXPECT_EQ(service
                .Handle("POST", "/v1/solve",
                        SolveBody(workload, "nonprivate", "basic", "d", 8.0))
                .http_status,
            429);
}

// --- Index cache ----------------------------------------------------------

TEST(ServiceCacheTest, RepeatSolvesOnOneDatasetHitTheIndexCache) {
  ClusterService service(UnmeteredOptions());
  const ClusterWorkload workload = SmallWorkload();
  const std::string body =
      SolveBody(workload, "one_cluster", "public", "cache/me");
  ASSERT_EQ(service.Handle("POST", "/v1/solve", body).http_status, 200);
  ASSERT_EQ(service.Handle("POST", "/v1/solve", body).http_status, 200);
  ASSERT_EQ(service.Handle("POST", "/v1/solve", body).http_status, 200);
  IndexCache::Stats stats = service.CacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);

  // Same key, different bytes: the fingerprint check replaces the entry
  // instead of serving the stale geometry.
  const ClusterWorkload other = SmallWorkload(/*seed=*/8);
  ASSERT_EQ(service
                .Handle("POST", "/v1/solve",
                        SolveBody(other, "one_cluster", "public", "cache/me"))
                .http_status,
            200);
  stats = service.CacheStats();
  EXPECT_EQ(stats.replaced, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServiceCacheTest, CachedAndColdRunsReleaseIdenticalAnswers) {
  // The cache must only accelerate: the first (miss) and second (hit) runs
  // of the same seeded request release byte-identical artifacts.
  ClusterService service(UnmeteredOptions());
  const ClusterWorkload workload = SmallWorkload();
  const std::string body =
      SolveBody(workload, "one_cluster", "public", "det/data");
  const ServiceReply cold = service.Handle("POST", "/v1/solve", body);
  const ServiceReply warm = service.Handle("POST", "/v1/solve", body);
  ASSERT_EQ(cold.http_status, 200);
  ASSERT_EQ(warm.http_status, 200);
  JsonValue cold_body = MustParse(cold.body);
  JsonValue warm_body = MustParse(warm.body);
  EXPECT_EQ(cold_body.Find("response")->Find("ball")->Encode(),
            warm_body.Find("response")->Find("ball")->Encode());
  EXPECT_TRUE(warm_body.Find("indexed")->AsBool());
}

// --- Streaming datasets ---------------------------------------------------

/// Reads an integer reply field, failing the test (not crashing) when the
/// key is absent or not a JSON integer.
std::uint64_t U64(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  EXPECT_NE(value, nullptr) << key;
  if (value == nullptr) return ~0ull;
  const auto parsed = value->AsU64();
  EXPECT_TRUE(parsed.ok()) << key;
  return parsed.ok() ? *parsed : ~0ull;
}

std::string AppendBody(const std::string& dataset, const PointSet& points,
                       std::uint64_t levels = 0, double axis = 1.0) {
  JsonValue object = JsonValue::Object();
  object.Set("dataset", JsonValue::String(dataset));
  JsonValue rows = JsonValue::Array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    JsonValue row = JsonValue::Array();
    for (const double c : points[i]) row.Append(JsonValue::Number(c));
    rows.Append(std::move(row));
  }
  object.Set("points", std::move(rows));
  if (levels > 0) {
    object.Set("levels", JsonValue::Number(levels));
    object.Set("axis", JsonValue::Number(axis));
  }
  return object.Encode();
}

std::string StreamSolveBody(const std::string& algorithm,
                            const std::string& dataset, std::size_t t,
                            std::uint64_t seed = 99) {
  WireRequest wire;
  wire.dataset = dataset;
  wire.seed = seed;
  wire.stream = true;
  wire.request.algorithm = algorithm;
  wire.request.t = t;
  wire.request.budget = {8.0, 1e-9};
  return WireRequestToJson(wire).Encode();
}

TEST(ServiceStreamTest, AppendCreatesStreamAndSolvesDeterministically) {
  ClusterService service(UnmeteredOptions());
  const ClusterWorkload workload = SmallWorkload();

  const ServiceReply appended = service.Handle(
      "POST", "/v1/stream/append",
      AppendBody("sensors/live", workload.points, workload.domain.levels(),
                 workload.domain.axis_length()));
  ASSERT_EQ(appended.http_status, 200) << appended.body;
  JsonValue ack = MustParse(appended.body);
  EXPECT_TRUE(ack.Find("created")->AsBool());
  EXPECT_EQ(U64(ack, "appended"), workload.points.size());
  EXPECT_EQ(U64(ack, "first_id"), 0u);
  EXPECT_EQ(U64(ack, "version"), 1u);
  EXPECT_EQ(U64(ack, "live"), workload.points.size());
  EXPECT_EQ(U64(ack, "total"), workload.points.size());
  EXPECT_FALSE(ack.Find("compacted")->AsBool());

  // Two stream solves at the same wire seed release byte-identical
  // artifacts: the resident index only accelerates, never perturbs.
  const std::string solve =
      StreamSolveBody("one_cluster", "sensors/live", workload.t);
  const ServiceReply first = service.Handle("POST", "/v1/solve", solve);
  const ServiceReply second = service.Handle("POST", "/v1/solve", solve);
  ASSERT_EQ(first.http_status, 200) << first.body;
  ASSERT_EQ(second.http_status, 200) << second.body;
  JsonValue first_body = MustParse(first.body);
  JsonValue second_body = MustParse(second.body);
  // Identical released artifact and accounting (only wall_ms may differ).
  for (const char* key : {"ball", "balls", "charged", "diagnostics"}) {
    EXPECT_EQ(first_body.Find("response")->Find(key)->Encode(),
              second_body.Find("response")->Find(key)->Encode())
        << key;
  }
  EXPECT_TRUE(first_body.Find("indexed")->AsBool());
  const JsonValue* stream = first_body.Find("stream");
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(U64(*stream, "version"), 1u);
  EXPECT_EQ(U64(*stream, "live"), workload.points.size());
  EXPECT_EQ(service.GetStats().stream_appends, 1u);
}

TEST(ServiceStreamTest, ExpireBumpsVersionAndCompactionInvalidatesIds) {
  ClusterService service(UnmeteredOptions());
  const ClusterWorkload workload = SmallWorkload();
  const std::size_t n = workload.points.size();  // 512
  ASSERT_EQ(service
                .Handle("POST", "/v1/stream/append",
                        AppendBody("churn", workload.points,
                                   workload.domain.levels(),
                                   workload.domain.axis_length()))
                .http_status,
            200);

  // Oldest-first count expiry: version bumps, total stays (lazy deletion).
  const ServiceReply by_count = service.Handle(
      "POST", "/v1/stream/expire", R"({"dataset": "churn", "count": 16})");
  ASSERT_EQ(by_count.http_status, 200) << by_count.body;
  JsonValue ack = MustParse(by_count.body);
  EXPECT_EQ(U64(ack, "expired"), 16u);
  EXPECT_EQ(U64(ack, "version"), 2u);
  EXPECT_EQ(U64(ack, "live"), n - 16);
  EXPECT_EQ(U64(ack, "total"), n);
  EXPECT_FALSE(ack.Find("compacted")->AsBool());

  // Explicit row ids (handed out by append replies).
  const ServiceReply by_ids = service.Handle(
      "POST", "/v1/stream/expire", R"({"dataset": "churn", "ids": [16, 17]})");
  ASSERT_EQ(by_ids.http_status, 200) << by_ids.body;
  ack = MustParse(by_ids.body);
  EXPECT_EQ(U64(ack, "expired"), 2u);
  EXPECT_EQ(U64(ack, "version"), 3u);
  EXPECT_EQ(U64(ack, "live"), n - 18);

  // Dropping below live/total = 1/4 triggers compaction: ids renumber, the
  // reply says so, and the version bumps twice (mutation + renumbering).
  const ServiceReply big = service.Handle(
      "POST", "/v1/stream/expire", R"({"dataset": "churn", "count": 400})");
  ASSERT_EQ(big.http_status, 200) << big.body;
  ack = MustParse(big.body);
  EXPECT_TRUE(ack.Find("compacted")->AsBool());
  EXPECT_EQ(U64(ack, "version"), 5u);
  EXPECT_EQ(U64(ack, "live"), n - 418);
  EXPECT_EQ(U64(ack, "total"), n - 418);  // storage reclaimed
  EXPECT_EQ(service.GetStats().stream_compactions, 1u);

  // A pre-compaction id is now out of range: the whole batch is refused and
  // the stream is untouched (atomic validation).
  const ServiceReply stale = service.Handle(
      "POST", "/v1/stream/expire", R"({"dataset": "churn", "ids": [500]})");
  EXPECT_EQ(stale.http_status, 400);
  EXPECT_EQ(MustParse(stale.body).Find("error")->Find("code")->AsString(),
            "InvalidRequest");
  EXPECT_EQ(U64(MustParse(service
                         .Handle("POST", "/v1/stream/expire",
                                 R"({"dataset": "churn", "count": 1})")
                         .body),
                "live"),
            n - 419);
}

TEST(ServiceStreamTest, MissingStreamsAreStructured404s) {
  ClusterService service(UnmeteredOptions());
  const auto expect_unknown = [&](const ServiceReply& reply) {
    EXPECT_EQ(reply.http_status, 404);
    EXPECT_EQ(MustParse(reply.body).Find("error")->Find("code")->AsString(),
              "UnknownDataset");
  };
  // Solving, expiring, and appending-without-"levels" against a dataset
  // with no resident stream all name the same structured error.
  expect_unknown(service.Handle("POST", "/v1/solve",
                                StreamSolveBody("one_cluster", "ghost", 8)));
  expect_unknown(service.Handle("POST", "/v1/stream/expire",
                                R"({"dataset": "ghost", "count": 1})"));
  expect_unknown(service.Handle("POST", "/v1/stream/append",
                                AppendBody("ghost", SmallWorkload().points)));
}

// --- Live HTTP server -----------------------------------------------------

TEST(HttpServerTest, ServesSolvesOverLoopbackDeterministically) {
  ClusterService service(UnmeteredOptions());
  HttpServerOptions options;
  options.workers = 2;
  HttpServer server(&service, options);
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(const HttpResponse health,
                       HttpGet(server.port(), "/healthz"));
  EXPECT_EQ(health.status, 200);

  const std::string body =
      SolveBody(SmallWorkload(), "one_cluster", "net", "net/data");
  ASSERT_OK_AND_ASSIGN(const HttpResponse first,
                       HttpPost(server.port(), "/v1/solve", body));
  ASSERT_OK_AND_ASSIGN(const HttpResponse second,
                       HttpPost(server.port(), "/v1/solve", body));
  ASSERT_EQ(first.status, 200);
  ASSERT_EQ(second.status, 200);
  // Same wire seed -> same released ball, regardless of which worker ran it.
  EXPECT_EQ(MustParse(first.body).Find("response")->Find("ball")->Encode(),
            MustParse(second.body).Find("response")->Find("ball")->Encode());

  server.Stop();
  const HttpServer::Stats stats = server.GetStats();
  EXPECT_GE(stats.accepted, 3u);
  EXPECT_EQ(stats.served, stats.accepted);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(HttpServerTest, KeepAliveServesManyRequestsPerConnection) {
  ClusterService service(UnmeteredOptions());
  HttpServerOptions options;
  options.workers = 2;
  HttpServer server(&service, options);
  ASSERT_OK(server.Start());

  // One socket, many requests: GETs and a full solve POST share the
  // connection, and the client never has to re-dial.
  HttpConnection connection(server.port());
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(const HttpResponse health,
                         connection.Get("/healthz"));
    EXPECT_EQ(health.status, 200);
  }
  ASSERT_OK_AND_ASSIGN(
      const HttpResponse solved,
      connection.Post("/v1/solve", SolveBody(SmallWorkload(), "one_cluster",
                                             "ka", "ka/data")));
  EXPECT_EQ(solved.status, 200);
  EXPECT_EQ(connection.reconnects(), 0u);

  server.Stop();
  const HttpServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.served, 9u);
  EXPECT_EQ(stats.reused, 8u);
}

TEST(HttpServerTest, RequestCapClosesAndClientRedials) {
  ClusterService service(UnmeteredOptions());
  HttpServerOptions options;
  options.workers = 1;
  options.max_requests_per_connection = 3;
  HttpServer server(&service, options);
  ASSERT_OK(server.Start());

  // The server announces "Connection: close" on every 3rd reply; the client
  // notices and re-dials, so 7 requests ride 3 connections (3 + 3 + 1).
  HttpConnection connection(server.port());
  for (int i = 0; i < 7; ++i) {
    ASSERT_OK_AND_ASSIGN(const HttpResponse health,
                         connection.Get("/healthz"));
    EXPECT_EQ(health.status, 200);
  }
  EXPECT_EQ(connection.reconnects(), 2u);

  server.Stop();
  const HttpServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.served, 7u);
  EXPECT_EQ(stats.reused, 4u);
}

TEST(HttpServerTest, ConcurrentClientsAllSucceed) {
  ClusterService service(UnmeteredOptions());
  HttpServerOptions options;
  options.workers = 4;
  HttpServer server(&service, options);
  ASSERT_OK(server.Start());

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 3;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string tenant = "tenant" + std::to_string(c);
      const std::string body = SolveBody(SmallWorkload(c), "nonprivate",
                                         tenant, tenant + "/data", 8.0,
                                         /*seed=*/100 + c);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto reply = HttpPost(server.port(), "/v1/solve", body);
        if (reply.ok() && reply->status == 200) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  EXPECT_EQ(ok_count.load(), static_cast<int>(kClients * kPerClient));
  EXPECT_EQ(service.GetStats().solved, kClients * kPerClient);
}

// --- Queue-full shedding --------------------------------------------------

std::atomic<bool> g_release_slow{false};

/// Registry-injected algorithm that parks its worker until the test opens
/// the gate (bounded by a safety timeout so a bug cannot hang the suite).
class SlowBlockAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "slow_block"; }
  ProblemKind kind() const override { return ProblemKind::kBaseline; }
  std::string_view description() const override {
    return "test-only: blocks until released";
  }
  Status ValidateRequest(const Request&) const override { return Status::OK(); }
  Result<Response> Run(Rng&, const Request&, BudgetSession&) const override {
    const auto deadline = std::chrono::steady_clock::now() + milliseconds(5000);
    while (!g_release_slow.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    return Response{};
  }
};

TEST(HttpServerTest, FullAdmissionQueueShedsWith503QueueFull) {
  AlgorithmRegistry registry;
  ASSERT_OK(registry.Register(std::make_unique<SlowBlockAlgorithm>()));
  ServiceOptions service_options;
  service_options.registry = &registry;
  ClusterService service(service_options);
  HttpServerOptions options;
  options.workers = 1;      // One drain loop...
  options.queue_depth = 1;  // ...and room for exactly one waiting connection.
  HttpServer server(&service, options);
  ASSERT_OK(server.Start());

  g_release_slow.store(false, std::memory_order_release);
  const std::string slow_body =
      R"({"dataset": "d", "algorithm": "slow_block", "points": [[0.5]],)"
      R"( "t": 1})";
  std::vector<std::thread> blocked;
  std::atomic<int> slow_ok{0};
  // First request occupies the worker; second fills the queue.
  for (int i = 0; i < 2; ++i) {
    blocked.emplace_back([&] {
      const auto reply = HttpPost(server.port(), "/v1/solve", slow_body);
      if (reply.ok() && reply->status == 200) {
        slow_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::this_thread::sleep_for(milliseconds(150));
  }

  // The next connection finds the queue full: the accept loop itself
  // answers the structured 503 without admitting it. (Assertions wait
  // until the parked threads are joined.)
  const auto shed = HttpPost(server.port(), "/v1/solve", slow_body);

  g_release_slow.store(true, std::memory_order_release);
  for (std::thread& t : blocked) t.join();
  server.Stop();

  ASSERT_OK(shed.status());
  EXPECT_EQ(shed->status, 503);
  EXPECT_EQ(MustParse(shed->body).Find("error")->Find("code")->AsString(),
            "QueueFull");
  EXPECT_EQ(slow_ok.load(), 2);  // Admitted requests were never dropped.
  EXPECT_GE(server.GetStats().shed, 1u);
}

// --- Graceful shutdown ----------------------------------------------------

TEST(HttpServerTest, RemoteShutdownDrainsAndStops) {
  ClusterService service;
  HttpServer server(&service, HttpServerOptions{});
  ASSERT_OK(server.Start());
  const int port = server.port();

  ASSERT_OK_AND_ASSIGN(const HttpResponse ack,
                       HttpPost(port, "/v1/shutdown", ""));
  EXPECT_EQ(ack.status, 200);
  EXPECT_EQ(MustParse(ack.body).Find("status")->AsString(), "draining");
  EXPECT_TRUE(service.shutdown_requested());

  // While draining, a solve that is already in flight is refused with the
  // structured 503 (the accept loop stops taking NEW connections, so the
  // drain window is exercised at the service seam).
  const ServiceReply refused = service.Handle(
      "POST", "/v1/solve",
      SolveBody(SmallWorkload(), "nonprivate", "late", "d"));
  EXPECT_EQ(refused.http_status, 503);
  EXPECT_EQ(MustParse(refused.body).Find("error")->Find("code")->AsString(),
            "ShuttingDown");

  server.Stop();
  EXPECT_FALSE(server.running());
  // The port is actually released: a fresh connection cannot reach it.
  EXPECT_FALSE(HttpGet(port, "/healthz").ok());
}

TEST(HttpServerTest, RemoteShutdownCanBeDisabled) {
  ServiceOptions options;
  options.allow_remote_shutdown = false;
  ClusterService service(options);
  const ServiceReply reply = service.Handle("POST", "/v1/shutdown", "");
  EXPECT_EQ(reply.http_status, 404);
  EXPECT_FALSE(service.shutdown_requested());
}

// --- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueueTest, TryPushShedsAtCapacityAndCloseDrains) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full -> shed
  EXPECT_EQ(queue.size(), 2u);

  queue.Close();
  EXPECT_FALSE(queue.TryPush(4));  // closed -> refused
  EXPECT_EQ(queue.Pop(), 1);       // already-admitted items still drain
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, PopBlocksUntilWorkOrClose) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] {
    EXPECT_EQ(queue.Pop(), 42);
    EXPECT_EQ(queue.Pop(), std::nullopt);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_TRUE(queue.TryPush(42));
  std::this_thread::sleep_for(milliseconds(20));
  queue.Close();
  consumer.join();
}

}  // namespace
}  // namespace dpcluster
