// Tests for RadiusProfile: the exact L(r, S) step function must agree with the
// direct definition at every radius.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "dpcluster/core/radius_profile.h"
#include "dpcluster/data/registry.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/parallel/thread_pool.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using testing_util::MakePointSet;

TEST(RadiusProfileTest, ValidatesArguments) {
  const GridDomain domain(16, 2);
  const PointSet empty(2);
  EXPECT_FALSE(RadiusProfile::Build(empty, 1, domain, 100).ok());
  const PointSet s = MakePointSet(2, {0.0, 0.0, 1.0, 1.0});
  EXPECT_FALSE(RadiusProfile::Build(s, 0, domain, 100).ok());
  EXPECT_FALSE(RadiusProfile::Build(s, 3, domain, 100).ok());
  EXPECT_EQ(RadiusProfile::Build(s, 1, domain, 1).status().code(),
            StatusCode::kResourceExhausted);
  const PointSet wrong_dim = MakePointSet(1, {0.0});
  EXPECT_FALSE(RadiusProfile::Build(wrong_dim, 1, domain, 100).ok());
}

TEST(RadiusProfileTest, MatchesDirectEvaluation) {
  Rng rng(1);
  const GridDomain domain(64, 2);
  for (int trial = 0; trial < 8; ++trial) {
    PointSet s = testing_util::UniformCube(rng, 30, 2);
    domain.SnapAll(s);
    const std::size_t t = 1 + rng.NextUint64(29);
    ASSERT_OK_AND_ASSIGN(RadiusProfile profile,
                         RadiusProfile::Build(s, t, domain, 100));
    ASSERT_OK_AND_ASSIGN(PairwiseDistances pd, PairwiseDistances::Compute(s, 100));
    // Check agreement at every solution-grid radius.
    for (std::uint64_t g = 0; g < domain.RadiusGridSize(); g += 7) {
      const double r = domain.RadiusFromIndex(g);
      EXPECT_NEAR(profile.LAtSolutionIndex(g), pd.CappedTopAverage(r, t), 1e-9)
          << "g=" << g << " t=" << t;
      // And at half radii (used by the quality's first term).
      EXPECT_NEAR(profile.LAtHalfSolutionIndex(g),
                  pd.CappedTopAverage(r / 2.0, t), 1e-9);
    }
  }
}

TEST(RadiusProfileTest, ZeroRadiusCountsDuplicates) {
  const GridDomain domain(16, 1);
  // Five copies of the same grid point, one far away; t = 4.
  const PointSet s = MakePointSet(1, {0.5, 0.5, 0.5, 0.5, 0.5, 1.0});
  ASSERT_OK_AND_ASSIGN(RadiusProfile profile, RadiusProfile::Build(s, 4, domain, 10));
  // Balls of radius 0 around the duplicates hold 5 points (capped at 4);
  // the far point holds 1: top-4 average = (4+4+4+4)/4 = 4.
  EXPECT_DOUBLE_EQ(profile.LAtZero(), 4.0);
}

TEST(RadiusProfileTest, MonotoneNonDecreasing) {
  Rng rng(2);
  const GridDomain domain(32, 2);
  PointSet s = testing_util::UniformCube(rng, 25, 2);
  domain.SnapAll(s);
  ASSERT_OK_AND_ASSIGN(RadiusProfile profile, RadiusProfile::Build(s, 10, domain, 100));
  double prev = -1.0;
  for (std::uint64_t g = 0; g < domain.RadiusGridSize(); ++g) {
    const double l = profile.LAtSolutionIndex(g);
    EXPECT_GE(l, prev - 1e-12);
    prev = l;
  }
}

TEST(RadiusProfileTest, SaturatesAtTForLargeRadius) {
  Rng rng(3);
  const GridDomain domain(32, 3);
  PointSet s = testing_util::UniformCube(rng, 20, 3);
  domain.SnapAll(s);
  const std::size_t t = 8;
  ASSERT_OK_AND_ASSIGN(RadiusProfile profile, RadiusProfile::Build(s, t, domain, 100));
  const std::uint64_t last = domain.RadiusGridSize() - 1;
  EXPECT_DOUBLE_EQ(profile.LAtSolutionIndex(last), static_cast<double>(t));
}

TEST(RadiusProfileTest, SensitivityAtMostTwoUnderReplacement) {
  // Lemma 4.5's core property, checked on the materialized profile.
  Rng rng(4);
  const GridDomain domain(32, 2);
  for (int trial = 0; trial < 6; ++trial) {
    PointSet s = testing_util::UniformCube(rng, 20, 2);
    domain.SnapAll(s);
    const std::size_t t = 1 + rng.NextUint64(19);
    PointSet s2 = s;
    std::vector<double> replacement = {domain.Snap(rng.NextDouble()),
                                       domain.Snap(rng.NextDouble())};
    s2.ReplaceRow(rng.NextUint64(s.size()), replacement);

    ASSERT_OK_AND_ASSIGN(RadiusProfile p0, RadiusProfile::Build(s, t, domain, 100));
    ASSERT_OK_AND_ASSIGN(RadiusProfile p1, RadiusProfile::Build(s2, t, domain, 100));
    for (std::uint64_t g = 0; g < domain.RadiusGridSize(); g += 5) {
      EXPECT_LE(std::abs(p0.LAtSolutionIndex(g) - p1.LAtSolutionIndex(g)),
                2.0 + 1e-9)
          << "g=" << g;
    }
  }
}

void ExpectSameProfile(const RadiusProfile& a, const RadiusProfile& b,
                       const std::string& context) {
  ASSERT_EQ(a.fine_l().domain_size(), b.fine_l().domain_size()) << context;
  ASSERT_EQ(a.fine_l().num_pieces(), b.fine_l().num_pieces()) << context;
  for (std::size_t p = 0; p < a.fine_l().num_pieces(); ++p) {
    ASSERT_EQ(a.fine_l().starts()[p], b.fine_l().starts()[p])
        << context << " piece=" << p;
    ASSERT_EQ(a.fine_l().values()[p], b.fine_l().values()[p])
        << context << " piece=" << p;
  }
}

TEST(RadiusProfileTest, ProfileIndexNamesRoundTrip) {
  for (const auto index :
       {ProfileIndex::kAuto, ProfileIndex::kGrid, ProfileIndex::kExact}) {
    ASSERT_OK_AND_ASSIGN(ProfileIndex parsed,
                         ProfileIndexFromName(ProfileIndexName(index)));
    EXPECT_EQ(parsed, index);
  }
  EXPECT_FALSE(ProfileIndexFromName("fancy").ok());
}

TEST(RadiusProfileTest, AutoCrossoverPrefersGridForSmallT) {
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kAuto, 4096, 256, 2),
            ProfileIndex::kGrid);
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kAuto, 4096, 2048, 2),
            ProfileIndex::kExact);
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kAuto, 100, 4, 2),
            ProfileIndex::kExact);
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kGrid, 100, 50, 2),
            ProfileIndex::kGrid);
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kExact, 4096, 2, 2),
            ProfileIndex::kExact);
}

TEST(RadiusProfileTest, AutoCrossoverExtendsGridRangeAtHighDimension) {
  // t - 1 in (n/4, n/2]: exact at low d, but at d >= 16 the cell grid
  // collapses to one cell, batched k-NN runs the blocked dense scan at a
  // cost independent of t, and the grid generator stays ahead of the pair
  // sweep.
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kAuto, 4096, 1500, 2),
            ProfileIndex::kExact);
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kAuto, 4096, 1500, 32),
            ProfileIndex::kGrid);
  // Beyond n/2 even the t-independent dense scan cannot pay for itself
  // against the events the sweep must then carry.
  EXPECT_EQ(ResolveProfileIndex(ProfileIndex::kAuto, 4096, 2500, 32),
            ProfileIndex::kExact);
}

// The lossless-pruning property: the grid-indexed profile must be
// bit-identical to the exact all-pairs sweep — same StepFunction breakpoints,
// same values — on every scenario family, for t spanning the degenerate
// edges (t=1: no events matter; t=n: nothing is pruned), at any thread count.
TEST(RadiusProfileTest, GridBitIdenticalToExactAcrossScenarioFamilies) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  const std::vector<std::string> families = registry.Names();
  ASSERT_EQ(families.size(), 9u);
  ThreadPool pool(8);
  std::uint64_t seed = 900;
  for (const std::string& family : families) {
    for (const auto& [n, dim] :
         std::vector<std::pair<std::size_t, std::size_t>>{{64, 1},
                                                          {192, 2},
                                                          {256, 3}}) {
      ScenarioSpec spec;
      spec.scenario = family;
      spec.n = n;
      spec.dim = dim;
      spec.levels = 1u << 8;
      Rng rng(++seed);
      ASSERT_OK_AND_ASSIGN(const ScenarioFamily* generator,
                           registry.Lookup(family));
      ASSERT_OK_AND_ASSIGN(ScenarioInstance instance,
                           generator->Generate(rng, spec));
      for (const std::size_t t :
           {std::size_t{1}, std::size_t{2}, instance.t, n / 2, n}) {
        ASSERT_OK_AND_ASSIGN(
            RadiusProfile exact,
            RadiusProfile::Build(instance.points, t, instance.domain, n,
                                 nullptr, ProfileIndex::kExact));
        ASSERT_OK_AND_ASSIGN(
            RadiusProfile grid,
            RadiusProfile::Build(instance.points, t, instance.domain, n,
                                 nullptr, ProfileIndex::kGrid));
        ASSERT_OK_AND_ASSIGN(
            RadiusProfile grid_mt,
            RadiusProfile::Build(instance.points, t, instance.domain, n,
                                 &pool, ProfileIndex::kGrid));
        const std::string context = family + " n=" + std::to_string(n) +
                                    " d=" + std::to_string(dim) +
                                    " t=" + std::to_string(t);
        ExpectSameProfile(exact, grid, context);
        ExpectSameProfile(exact, grid_mt, context + " (threads=8)");
      }
    }
  }
}

TEST(RadiusProfileTest, FineGridTwiceSolutionGrid) {
  const GridDomain domain(16, 2);
  const PointSet s = MakePointSet(2, {0.0, 0.0, 1.0, 1.0});
  ASSERT_OK_AND_ASSIGN(RadiusProfile profile, RadiusProfile::Build(s, 1, domain, 10));
  EXPECT_EQ(profile.fine_l().domain_size(),
            2 * (domain.RadiusGridSize() - 1) + 1);
  EXPECT_EQ(profile.solution_grid_size(), domain.RadiusGridSize());
}

}  // namespace
}  // namespace dpcluster
