// Tests for the common substrate: Status/Result and math utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dpcluster/common/math_util.h"
#include "dpcluster/common/status.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad t");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad t");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNoPrivateAnswer), "NoPrivateAnswer");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NoPrivateAnswer("suppressed");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNoPrivateAnswer);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<double>> r = std::vector<double>{1.0, 2.0};
  ASSERT_TRUE(r.ok());
  std::vector<double> v = std::move(r).value();
  EXPECT_EQ(v.size(), 2u);
}

Status FailsThrough() {
  DPC_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

Result<int> AssignsThrough() {
  DPC_ASSIGN_OR_RETURN(int v, Result<int>(7));
  return v + 1;
}

Result<int> AssignsError() {
  DPC_ASSIGN_OR_RETURN(int v, Result<int>(Status::Internal("nope")));
  return v;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesValueAndError) {
  auto ok = AssignsThrough();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  EXPECT_EQ(AssignsError().status().code(), StatusCode::kInternal);
}

TEST(MathUtilTest, IteratedLogKnownValues) {
  EXPECT_EQ(IteratedLog(0.5), 0);
  EXPECT_EQ(IteratedLog(1.0), 0);
  EXPECT_EQ(IteratedLog(2.0), 1);
  EXPECT_EQ(IteratedLog(4.0), 2);
  EXPECT_EQ(IteratedLog(16.0), 3);
  EXPECT_EQ(IteratedLog(65536.0), 4);
  EXPECT_EQ(IteratedLog(std::pow(2.0, 100.0)), 5);
}

TEST(MathUtilTest, TowerMatchesIteratedLog) {
  // log*(tower(j)) == j for the representable range.
  for (int j = 0; j <= 4; ++j) {
    EXPECT_EQ(IteratedLog(Tower(j)), j) << "j=" << j;
  }
  EXPECT_TRUE(std::isinf(Tower(6)));
}

TEST(MathUtilTest, FloorCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  for (int p = 1; p < 62; ++p) {
    const std::uint64_t v = std::uint64_t{1} << p;
    EXPECT_EQ(FloorLog2(v), p);
    EXPECT_EQ(CeilLog2(v), p);
    EXPECT_EQ(FloorLog2(v + 1), p);
    EXPECT_EQ(CeilLog2(v + 1), p + 1);
  }
}

TEST(MathUtilTest, LogSumExpStable) {
  const double vals[] = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(vals), 1000.0 + std::log(2.0), 1e-9);
  const double tiny[] = {-1000.0, -1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(tiny), -1000.0 + std::log(3.0), 1e-9);
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

TEST(MathUtilTest, PaperGammaScalesInverselyWithEpsilon) {
  const double g1 = PaperGamma(1e6, 1.0, 0.1, 1e-9);
  const double g2 = PaperGamma(1e6, 2.0, 0.1, 1e-9);
  EXPECT_GT(g1, 0.0);
  EXPECT_NEAR(g1 / g2, 2.0, 1e-9);
  // The verbatim constant is astronomically large — that is the point of the
  // practical preset (DESIGN.md substitution #2).
  EXPECT_GT(g1, 1e6);
}

TEST(MathUtilTest, PaperGammaGrowsWithDomain) {
  EXPECT_LE(PaperGamma(1e3, 1.0, 0.1, 1e-9), PaperGamma(1e18, 1.0, 0.1, 1e-9));
}

}  // namespace
}  // namespace dpcluster
