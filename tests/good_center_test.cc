// Tests for GoodCenter (Algorithm 2, Lemma 4.12): given the cluster radius,
// the released center must sit near the planted cluster.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/core/good_center.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

GoodCenterOptions TestOptions(double eps) {
  GoodCenterOptions o;
  o.params = {eps, 1e-8};
  o.beta = 0.1;
  return o;
}

TEST(GoodCenterOptionsTest, Validation) {
  GoodCenterOptions o = TestOptions(1.0);
  EXPECT_OK(o.Validate());
  o.params.delta = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0);
  o.box_side_factor = 2.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0);
  o.interval_multiplier = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0);
  o.jl_constant = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(GoodCenterOptionsTest, PaperConstantsPreset) {
  const GoodCenterOptions paper = GoodCenterOptions::PaperConstants();
  EXPECT_DOUBLE_EQ(paper.jl_constant, 46.0);
  EXPECT_DOUBLE_EQ(paper.box_side_factor, 300.0);
  EXPECT_DOUBLE_EQ(paper.threshold_offset_factor, 100.0);
  EXPECT_EQ(paper.max_jl_dim, 0u);
  EXPECT_OK(paper.Validate());
}

TEST(GoodCenterTest, ValidatesArguments) {
  Rng rng(1);
  const PointSet empty(2);
  EXPECT_FALSE(GoodCenter(rng, empty, 1, 0.1, TestOptions(1.0)).ok());
  const PointSet s = testing_util::MakePointSet(2, {0.5, 0.5});
  EXPECT_FALSE(GoodCenter(rng, s, 0, 0.1, TestOptions(1.0)).ok());
  EXPECT_FALSE(GoodCenter(rng, s, 2, 0.1, TestOptions(1.0)).ok());
  EXPECT_FALSE(GoodCenter(rng, s, 1, 0.0, TestOptions(1.0)).ok());
  EXPECT_FALSE(GoodCenter(rng, s, 1, -1.0, TestOptions(1.0)).ok());
}

class GoodCenterDimTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoodCenterDimTest, CenterLandsNearPlantedCluster) {
  const std::size_t d = GetParam();
  Rng rng(100 + d);
  PlantedClusterSpec spec;
  spec.dim = d;
  spec.levels = 1u << 16;
  spec.cluster_radius = 0.02;
  spec.n = d >= 8 ? 6000 : 2500;
  spec.t = d >= 8 ? 4000 : 1200;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  const GoodCenterOptions options = TestOptions(4.0);
  int near = 0;
  const int trials = 4;
  for (int trial = 0; trial < trials; ++trial) {
    ASSERT_OK_AND_ASSIGN(
        GoodCenterResult result,
        GoodCenter(rng, w.points, w.t, spec.cluster_radius, options));
    ASSERT_EQ(result.center.size(), d);
    // The effective radius around the released center that recaptures ~80% of
    // the cluster size; the proof bound is O(r sqrt(k)) and in practice the
    // center sits essentially on the cluster.
    const double tight = RadiusCapturing(
        w.points, result.center,
        static_cast<std::size_t>(0.8 * static_cast<double>(w.t)));
    if (tight <= 12.0 * spec.cluster_radius) ++near;
    EXPECT_GT(result.jl_dim, 1u);
    EXPECT_GE(result.rounds_used, 1u);
    EXPECT_GT(result.guarantee_radius, 0.0);
  }
  EXPECT_GE(near, trials - 1) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Dims, GoodCenterDimTest,
                         ::testing::Values<std::size_t>(1, 2, 4, 8));

TEST(GoodCenterTest, DiagnosticsAreConsistent) {
  Rng rng(5);
  PlantedClusterSpec spec;
  spec.dim = 2;
  spec.n = 2000;
  spec.t = 1000;
  spec.cluster_radius = 0.02;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  ASSERT_OK_AND_ASSIGN(GoodCenterResult result,
                       GoodCenter(rng, w.points, w.t, 0.02, TestOptions(4.0)));
  // The noisy box count should be near t (the cluster fits in one box).
  EXPECT_GT(result.noisy_box_count, 0.5 * static_cast<double>(w.t));
  EXPECT_GT(result.noisy_inlier_count, 0.0);
  EXPECT_GT(result.noise_sigma, 0.0);
  // Guarantee radius formula: (sqrt(2) * box_side + 1) * r * sqrt(k).
  const GoodCenterOptions o = TestOptions(4.0);
  const double expect = (std::sqrt(2.0) * o.box_side_factor + 1.0) * 0.02 *
                        std::sqrt(static_cast<double>(result.jl_dim));
  EXPECT_NEAR(result.guarantee_radius, expect, 1e-9);
}

TEST(GoodCenterTest, OverlyTightRadiusTimesOutOrFails) {
  // If no ball of radius r holds t points, the retry loop must not succeed
  // spuriously: expect DeadlineExceeded (or a NoPrivateAnswer downstream).
  Rng rng(6);
  PointSet s = testing_util::UniformCube(rng, 400, 2);
  GoodCenterOptions options = TestOptions(2.0);
  options.max_rounds = 50;
  const auto result = GoodCenter(rng, s, 300, 1e-6, options);
  EXPECT_FALSE(result.ok());
}

TEST(GoodCenterTest, RespectsMaxJlDimCap) {
  Rng rng(7);
  PlantedClusterSpec spec;
  spec.dim = 4;
  spec.n = 1500;
  spec.t = 900;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  GoodCenterOptions options = TestOptions(4.0);
  options.max_jl_dim = 6;
  ASSERT_OK_AND_ASSIGN(GoodCenterResult result,
                       GoodCenter(rng, w.points, w.t, 0.02, options));
  EXPECT_LE(result.jl_dim, 6u);
}

}  // namespace
}  // namespace dpcluster
