// Statistical tests for the sampling routines (Laplace, Gaussian, Gumbel,
// sphere/ball, discrete).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "test_util.h"

namespace dpcluster {
namespace {

constexpr std::size_t kTrials = 200000;

TEST(LaplaceSampleTest, MeanAndVariance) {
  Rng rng(1);
  double sum = 0.0;
  double sq = 0.0;
  const double scale = 2.5;
  for (std::size_t i = 0; i < kTrials; ++i) {
    const double x = SampleLaplace(rng, scale);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kTrials;
  const double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 2.0 * scale * scale, 0.4);  // Var[Lap(b)] = 2 b^2.
}

TEST(LaplaceSampleTest, TailProbability) {
  // P(|Lap(b)| > b ln(1/q)) = q.
  Rng rng(2);
  const double b = 1.0;
  const double q = 0.05;
  const double bound = b * std::log(1.0 / q);
  int exceed = 0;
  for (std::size_t i = 0; i < kTrials; ++i) {
    if (std::abs(SampleLaplace(rng, b)) > bound) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / kTrials, q, 0.01);
}

TEST(GaussianSampleTest, MeanAndVariance) {
  Rng rng(3);
  double sum = 0.0;
  double sq = 0.0;
  const double sigma = 1.7;
  for (std::size_t i = 0; i < kTrials; ++i) {
    const double x = SampleGaussian(rng, sigma);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kTrials;
  const double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, sigma * sigma, 0.08);
}

TEST(GaussianSampleTest, ZeroStddevIsZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleGaussian(rng, 0.0), 0.0);
}

TEST(GumbelSampleTest, MeanIsEulerGamma) {
  Rng rng(5);
  const double mean = testing_util::SampleMean(
      kTrials, [&] { return SampleGumbel(rng); });
  EXPECT_NEAR(mean, std::numbers::egamma, 0.02);
}

TEST(GumbelSampleTest, ArgmaxRealizesSoftmax) {
  // P(argmax_i (s_i + G_i) = j) = exp(s_j) / sum exp(s_i).
  Rng rng(6);
  const std::vector<double> scores = {0.0, std::log(3.0)};  // 1:3 odds.
  int wins = 0;
  const std::size_t trials = 100000;
  for (std::size_t i = 0; i < trials; ++i) {
    const double a = scores[0] + SampleGumbel(rng);
    const double b = scores[1] + SampleGumbel(rng);
    if (b > a) ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, 0.75, 0.01);
}

TEST(SphereSampleTest, UnitNormAndMeanZero) {
  Rng rng(7);
  const int dim = 8;
  std::vector<double> mean(dim, 0.0);
  const std::size_t trials = 20000;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto v = SampleUnitSphere(rng, dim);
    EXPECT_NEAR(Norm2(v), 1.0, 1e-9);
    for (int j = 0; j < dim; ++j) mean[j] += v[j];
  }
  for (int j = 0; j < dim; ++j) {
    EXPECT_NEAR(mean[j] / trials, 0.0, 0.02);
  }
}

TEST(BallSampleTest, StaysInBallAndFillsIt) {
  Rng rng(8);
  const std::vector<double> center = {0.5, -0.25, 1.0};
  const double radius = 0.4;
  double max_dist = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto p = SampleBall(rng, center, radius);
    const double dist = Distance(p, center);
    EXPECT_LE(dist, radius * (1.0 + 1e-9));
    max_dist = std::max(max_dist, dist);
  }
  EXPECT_GT(max_dist, 0.95 * radius);  // The boundary region is reached.
}

TEST(BallSampleTest, RadiusDistributionMatchesVolume) {
  // In d=2, P(dist <= r/2) = 1/4.
  Rng rng(9);
  const std::vector<double> center = {0.0, 0.0};
  int inner = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const auto p = SampleBall(rng, center, 1.0);
    if (Norm2(p) <= 0.5) ++inner;
  }
  EXPECT_NEAR(static_cast<double>(inner) / trials, 0.25, 0.01);
}

TEST(DiscreteSampleTest, MatchesWeights) {
  Rng rng(10);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> hist(3, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++hist[SampleDiscrete(rng, weights)];
  EXPECT_EQ(hist[1], 0);
  EXPECT_NEAR(static_cast<double>(hist[0]) / trials, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(hist[2]) / trials, 0.75, 0.01);
}

TEST(FillGaussianTest, FillsWholeSpan) {
  Rng rng(11);
  std::vector<double> buf(128, 0.0);
  FillGaussian(rng, 1.0, buf);
  int zeros = 0;
  for (double v : buf) zeros += (v == 0.0);
  EXPECT_EQ(zeros, 0);
}

}  // namespace
}  // namespace dpcluster
