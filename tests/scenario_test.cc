// Tests for the scenario subsystem (src/dpcluster/data/): registry behavior
// and, for every registered family, statistical sanity — structural
// invariants, grid/bounds discipline, seed determinism, and ground-truth
// recoverability.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dpcluster/data/registry.h"
#include "dpcluster/data/scenario.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/la/vector_ops.h"
#include "test_util.h"

namespace dpcluster {
namespace {

ScenarioSpec SmallSpec(const std::string& scenario) {
  ScenarioSpec spec;
  spec.scenario = scenario;
  spec.n = 600;
  spec.dim = 3;
  spec.levels = 1u << 10;
  return spec;
}

// Snapping moves each point by at most half a grid diagonal.
double SnapTolerance(const GridDomain& domain) {
  return 0.5 * domain.step() * std::sqrt(static_cast<double>(domain.dim())) +
         1e-12;
}

// ------------------------------------------------------------- registry ---

TEST(ScenarioRegistryTest, GlobalHasAllBuiltinFamilies) {
  const auto names = ScenarioRegistry::Global().Names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const char* expected :
       {"planted_cluster", "gaussian_mixture", "outlier_contaminated",
        "heavy_tailed", "axis_degenerate", "grid_snapped", "annulus",
        "near_tie", "streaming"}) {
    EXPECT_TRUE(have.count(expected)) << "missing family " << expected;
  }
  EXPECT_GE(names.size(), 8u);
}

TEST(ScenarioRegistryTest, LookupUnknownIsNotFound) {
  const auto result = ScenarioRegistry::Global().Lookup("no_such_scenario");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The error names the registered families, like the algorithm registry.
  EXPECT_NE(result.status().message().find("planted_cluster"),
            std::string::npos);
}

TEST(ScenarioRegistryTest, DuplicateRegistrationRejected) {
  ScenarioRegistry registry;
  ASSERT_OK(RegisterBuiltinScenarios(registry));
  const std::size_t size = registry.size();
  // Re-registering the built-ins is a no-op (names already present).
  ASSERT_OK(RegisterBuiltinScenarios(registry));
  EXPECT_EQ(registry.size(), size);
}

TEST(ScenarioRegistryTest, GenerateRejectsInvalidSharedSpec) {
  Rng rng(1);
  ScenarioSpec spec = SmallSpec("planted_cluster");
  spec.cluster_fraction = 0.0;
  EXPECT_FALSE(GenerateScenario(rng, spec).ok());
  spec = SmallSpec("planted_cluster");
  spec.levels = 1;
  EXPECT_FALSE(GenerateScenario(rng, spec).ok());
}

TEST(ScenarioRegistryTest, FamilySpecValidationRuns) {
  Rng rng(1);
  ScenarioSpec spec = SmallSpec("gaussian_mixture");
  spec.imbalance = 0.5;  // must be >= 1
  EXPECT_FALSE(GenerateScenario(rng, spec).ok());
  spec = SmallSpec("near_tie");
  spec.cluster_fraction = 0.9;  // needs 2t - 1 <= n
  EXPECT_FALSE(GenerateScenario(rng, spec).ok());
  spec = SmallSpec("grid_snapped");
  spec.snap_levels = 1u << 20;  // coarser-than-domain snap grid only
  EXPECT_FALSE(GenerateScenario(rng, spec).ok());
}

// ------------------------------------------------- every-family sanity ---

class EveryFamilyTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EveryFamilyTest,
    ::testing::ValuesIn(ScenarioRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// Structural invariants and domain bounds: n points, labels aligned, exactly
// t primary points, everything snapped onto the grid inside the cube.
TEST_P(EveryFamilyTest, BoundsAndInvariants) {
  Rng rng(7);
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance,
                       GenerateScenario(rng, SmallSpec(GetParam())));
  EXPECT_EQ(instance.scenario, GetParam());
  EXPECT_EQ(instance.points.size(), 600u);
  EXPECT_EQ(instance.points.dim(), 3u);
  EXPECT_OK(instance.CheckInvariants());
  EXPECT_EQ(instance.LabelCount(0), instance.t);
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    for (std::size_t j = 0; j < instance.points.dim(); ++j) {
      const double x = instance.points[i][j];
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, instance.domain.axis_length());
      EXPECT_TRUE(instance.domain.OnGrid(x));
    }
  }
}

// Identical seeds must give bit-identical instances; different seeds must not.
TEST_P(EveryFamilyTest, DeterministicAcrossIdenticalSeeds) {
  const ScenarioSpec spec = SmallSpec(GetParam());
  Rng rng_a(42);
  Rng rng_b(42);
  Rng rng_c(43);
  ASSERT_OK_AND_ASSIGN(ScenarioInstance a, GenerateScenario(rng_a, spec));
  ASSERT_OK_AND_ASSIGN(ScenarioInstance b, GenerateScenario(rng_b, spec));
  ASSERT_OK_AND_ASSIGN(ScenarioInstance c, GenerateScenario(rng_c, spec));
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_TRUE(std::equal(a.points.Data().begin(), a.points.Data().end(),
                         b.points.Data().begin()));
  EXPECT_EQ(a.labels, b.labels);
  ASSERT_EQ(a.true_balls.size(), b.true_balls.size());
  for (std::size_t i = 0; i < a.true_balls.size(); ++i) {
    EXPECT_EQ(a.true_balls[i].center, b.true_balls[i].center);
    EXPECT_EQ(a.true_balls[i].radius, b.true_balls[i].radius);
  }
  EXPECT_FALSE(std::equal(a.points.Data().begin(), a.points.Data().end(),
                          c.points.Data().begin()));
}

// Ground-truth recoverability: the primary ball (+ snap tolerance) holds the
// great majority of the points it claims. Gaussian tails may clip a little;
// every other family plants points inside the ball by construction.
TEST_P(EveryFamilyTest, PrimaryBallRecoversItsPoints) {
  Rng rng(11);
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance,
                       GenerateScenario(rng, SmallSpec(GetParam())));
  Ball inflated = instance.primary();
  inflated.radius += SnapTolerance(instance.domain);
  std::size_t recovered = 0;
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    if (instance.labels[i] == 0 && inflated.Contains(instance.points[i])) {
      ++recovered;
    }
  }
  const double fraction =
      static_cast<double>(recovered) / static_cast<double>(instance.t);
  EXPECT_GE(fraction, GetParam() == "gaussian_mixture" ? 0.7 : 0.999)
      << "primary ball recovered only " << recovered << "/" << instance.t;
}

// ------------------------------------------------- family-specific shape ---

TEST(ScenarioShapeTest, GaussianMixtureImbalanceOrdersComponents) {
  Rng rng(3);
  ScenarioSpec spec = SmallSpec("gaussian_mixture");
  spec.n = 1000;
  spec.k = 3;
  spec.imbalance = 4.0;
  spec.noise_fraction = 0.1;
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  ASSERT_EQ(instance.true_balls.size(), 3u);
  // Component 0 (the primary) is the smallest; sizes grow with the index.
  const std::size_t c0 = instance.LabelCount(0);
  const std::size_t c2 = instance.LabelCount(2);
  EXPECT_EQ(c0, instance.t);
  EXPECT_GE(c2, 3 * c0);  // imbalance 4 with rounding slack
}

TEST(ScenarioShapeTest, OutlierContaminationStaysOutsideTheExclusionZone) {
  Rng rng(4);
  ScenarioSpec spec = SmallSpec("outlier_contaminated");
  spec.noise_fraction = 0.2;
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  const Ball& primary = instance.primary();
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    if (instance.labels[i] != -1) continue;
    EXPECT_GT(Distance(instance.points[i], primary.center),
              2.0 * primary.radius);
  }
}

TEST(ScenarioShapeTest, HeavyTailedHasStragglersBeyondTheCore) {
  Rng rng(5);
  ScenarioSpec spec = SmallSpec("heavy_tailed");
  spec.tail_index = 1.2;
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  const Ball& primary = instance.primary();
  std::size_t far = 0;
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    if (Distance(instance.points[i], primary.center) > 3.0 * primary.radius) {
      ++far;
    }
  }
  EXPECT_GT(far, 0u) << "heavy tail produced no stragglers";
}

TEST(ScenarioShapeTest, AxisDegenerateClusterIsLowRank) {
  Rng rng(6);
  ScenarioSpec spec = SmallSpec("axis_degenerate");
  spec.dim = 4;
  spec.intrinsic_dim = 1;
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  // Cluster points vary in exactly intrinsic_dim coordinates (up to grid
  // snapping): the others are frozen at the center's value.
  std::size_t varying = 0;
  for (std::size_t j = 0; j < spec.dim; ++j) {
    double lo = instance.domain.axis_length();
    double hi = 0.0;
    for (std::size_t i = 0; i < instance.points.size(); ++i) {
      if (instance.labels[i] != 0) continue;
      lo = std::min(lo, instance.points[i][j]);
      hi = std::max(hi, instance.points[i][j]);
    }
    if (hi - lo > 2.0 * instance.domain.step()) ++varying;
  }
  EXPECT_EQ(varying, 1u);
}

TEST(ScenarioShapeTest, GridSnappedCollapsesToFewSites) {
  Rng rng(8);
  ScenarioSpec spec = SmallSpec("grid_snapped");
  spec.snap_levels = 5;
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  // Every coordinate lies on the coarse 5-level sub-grid => at most 5^3
  // distinct sites for 600 points: duplicates everywhere.
  std::set<std::vector<double>> sites;
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    const auto row = instance.points[i];
    sites.emplace(row.begin(), row.end());
  }
  EXPECT_LE(sites.size(), 125u);
}

TEST(ScenarioShapeTest, AnnulusAvoidsItsOwnCenter) {
  Rng rng(9);
  ScenarioSpec spec = SmallSpec("annulus");
  spec.cluster_radius = 0.2;
  spec.shell_thickness = 0.1;
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  const Ball& primary = instance.primary();
  const double tolerance = SnapTolerance(instance.domain);
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    if (instance.labels[i] != 0) continue;
    const double r = Distance(instance.points[i], primary.center);
    EXPECT_GE(r, 0.9 * primary.radius - tolerance);
    EXPECT_LE(r, primary.radius + tolerance);
  }
}

TEST(ScenarioShapeTest, NearTieDecoyHoldsOneFewerPoint) {
  Rng rng(10);
  ScenarioSpec spec = SmallSpec("near_tie");
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  ASSERT_EQ(instance.true_balls.size(), 2u);
  EXPECT_EQ(instance.LabelCount(0), instance.t);
  EXPECT_EQ(instance.LabelCount(1), instance.t - 1);
  // The decoy is the tighter ball.
  EXPECT_LT(instance.true_balls[1].radius, instance.true_balls[0].radius);
  // The two clusters are far apart relative to their radii.
  EXPECT_GT(Distance(instance.true_balls[0].center,
                     instance.true_balls[1].center),
            4.0 * instance.true_balls[0].radius);
}

}  // namespace
}  // namespace dpcluster
