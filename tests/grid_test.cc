// Tests for the quantized domain X^d and its radius solution grid.

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/geo/grid_domain.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(GridDomainTest, StepAndSnap) {
  const GridDomain g(5, 1);  // Levels {0, .25, .5, .75, 1}.
  EXPECT_DOUBLE_EQ(g.step(), 0.25);
  EXPECT_DOUBLE_EQ(g.Snap(0.3), 0.25);
  EXPECT_DOUBLE_EQ(g.Snap(0.38), 0.5);
  EXPECT_DOUBLE_EQ(g.Snap(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(g.Snap(9.0), 1.0);
}

TEST(GridDomainTest, OnGrid) {
  const GridDomain g(5, 1);
  EXPECT_TRUE(g.OnGrid(0.0));
  EXPECT_TRUE(g.OnGrid(0.75));
  EXPECT_FALSE(g.OnGrid(0.3));
  EXPECT_FALSE(g.OnGrid(1.2));
}

TEST(GridDomainTest, SnapAllPutsPointsOnGrid) {
  Rng rng(3);
  const GridDomain g(17, 3);
  PointSet s = testing_util::UniformCube(rng, 50, 3);
  g.SnapAll(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(g.OnGrid(s[i][j]));
    }
  }
}

TEST(GridDomainTest, SnapIsIdempotent) {
  const GridDomain g(1024, 1);
  for (double x : {0.0, 0.123, 0.5, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(g.Snap(g.Snap(x)), g.Snap(x));
  }
}

TEST(GridDomainTest, RadiusGridSizeMatchesFormula) {
  // ceil(sqrt(d)) * 2|X| + 1.
  const GridDomain g1(16, 1);
  EXPECT_EQ(g1.RadiusGridSize(), 1u * 2u * 16u + 1u);
  const GridDomain g2(16, 2);
  EXPECT_EQ(g2.RadiusGridSize(), 2u * 2u * 16u + 1u);
  const GridDomain g5(16, 5);  // ceil(sqrt(5)) = 3.
  EXPECT_EQ(g5.RadiusGridSize(), 3u * 2u * 16u + 1u);
}

TEST(GridDomainTest, RadiusIndexRoundTrip) {
  const GridDomain g(64, 2);
  for (std::uint64_t idx : {0ull, 1ull, 17ull, 255ull}) {
    EXPECT_EQ(g.RadiusIndexCeil(g.RadiusFromIndex(idx)), idx);
  }
}

TEST(GridDomainTest, RadiusIndexCeilRoundsUp) {
  const GridDomain g(64, 2);
  const double step = g.RadiusFromIndex(1);
  EXPECT_EQ(g.RadiusIndexCeil(0.5 * step), 1u);
  EXPECT_EQ(g.RadiusIndexCeil(1.5 * step), 2u);
  EXPECT_EQ(g.RadiusIndexCeil(0.0), 0u);
}

TEST(GridDomainTest, RadiusIndexCeilClampsToGrid) {
  const GridDomain g(8, 1);
  const std::uint64_t max_idx = g.RadiusGridSize() - 1;
  EXPECT_EQ(g.RadiusIndexCeil(1e9), max_idx);
}

TEST(GridDomainTest, LargestRadiusCoversCubeDiameter) {
  for (std::size_t d : {1u, 2u, 3u, 7u, 16u}) {
    const GridDomain g(32, d);
    const double max_radius = g.RadiusFromIndex(g.RadiusGridSize() - 1);
    EXPECT_GE(max_radius, std::sqrt(static_cast<double>(d)));
  }
}

TEST(GridDomainTest, ScaledAxisLength) {
  const GridDomain g(11, 1, 10.0);  // Remark 3.3 rescaling.
  EXPECT_DOUBLE_EQ(g.step(), 1.0);
  EXPECT_DOUBLE_EQ(g.Snap(3.4), 3.0);
  EXPECT_DOUBLE_EQ(g.Snap(25.0), 10.0);
}

}  // namespace
}  // namespace dpcluster
