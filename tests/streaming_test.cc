// Streaming-maintenance property tests: the tentpole contract of the
// incremental index. For every registered scenario family, an IndexedDataset
// that absorbed a stream of Inserts and Removes must answer every query
// bit-identically to a from-scratch rebuild over its active rows — at 1, 2,
// and 8 threads — and the incrementally patched KnnCappedCounts rows must
// drive GoodRadius to the released bytes a rebuild-per-batch pipeline
// produces.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dpcluster/core/good_radius.h"
#include "dpcluster/data/registry.h"
#include "dpcluster/data/scenario.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/thread_pool.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// Streams the tail of `instance` into an index seeded with its head while
// expiring a scattered subset of the head — the arrival/expiry churn the
// service's /v1/stream endpoints produce. Returns the edited index.
IndexedDataset ChurnedIndex(const ScenarioInstance& instance,
                            std::vector<std::uint32_t>* added,
                            std::vector<std::uint32_t>* removed) {
  const std::size_t n = instance.points.size();
  const std::size_t n0 = (2 * n) / 3;
  PointSet head(instance.points.dim());
  for (std::size_t i = 0; i < n0; ++i) head.Add(instance.points[i]);
  auto created = IndexedDataset::Create(std::move(head), instance.domain);
  EXPECT_OK(created.status());
  IndexedDataset index = std::move(*created);
  // Warm the grid so every edit exercises the incremental path.
  std::vector<double> warm(n0);
  index.BatchKnn(1, warm, nullptr);
  EXPECT_TRUE(index.grid_built());

  for (std::size_t i = 0; i < n0; i += 5) {
    index.Remove(i);
    if (removed != nullptr) {
      removed->push_back(static_cast<std::uint32_t>(i));
    }
  }
  for (std::size_t i = n0; i < n; ++i) {
    auto id = index.Insert(instance.points[i]);
    EXPECT_OK(id.status());
    if (added != nullptr) added->push_back(static_cast<std::uint32_t>(*id));
  }
  EXPECT_TRUE(index.grid_built());  // Exact geometry: no rebuild happened.
  return index;
}

class EveryFamilyStreamingTest : public ::testing::TestWithParam<std::string> {
};

// The property test the tentpole is pinned by: insert/expire churn over each
// family's geometry, then bit-identity against a fresh rebuild at 1/2/8
// threads.
TEST_P(EveryFamilyStreamingTest, ChurnMatchesFreshRebuild) {
  ScenarioSpec spec;
  spec.scenario = GetParam();
  spec.n = 240;
  spec.dim = 2;
  spec.levels = std::uint64_t{1} << 10;
  Rng rng(91);
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));

  IndexedDataset index = ChurnedIndex(instance, nullptr, nullptr);
  const PointSet view = index.ActiveView();
  const std::size_t m = index.active_size();
  const std::size_t k = 6;
  ASSERT_OK_AND_ASSIGN(SpatialGrid fresh,
                       SpatialGrid::Build(view, instance.domain, k));
  std::vector<double> want(m * k);
  fresh.BatchKnnDistances(k, want, nullptr, /*sorted=*/true);
  std::vector<double> got(m * k);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    index.BatchKnn(k, got, &pool, /*sorted=*/true);
    EXPECT_EQ(got, want) << "threads=" << threads;
  }

  // Counting queries too: brute force over the view is the reference.
  std::vector<std::size_t> counts(m);
  index.BatchCountWithin(instance.primary().radius, counts, nullptr);
  for (std::size_t i = 0; i < m; i += 7) {
    std::size_t expect = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (Distance(view[i], view[j]) <= instance.primary().radius) ++expect;
    }
    EXPECT_EQ(counts[i], expect) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, EveryFamilyStreamingTest,
    ::testing::ValuesIn(ScenarioRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// The streaming family's schedule contract: replaying its arrivals and
// expiries through an incremental IndexedDataset must end in exactly the
// instance's points — the survivors in arrival order — with queries
// byte-identical to indexing the final state directly.
TEST(StreamingScenarioTest, ScheduleReplayReproducesTheInstance) {
  ScenarioSpec spec;
  spec.scenario = "streaming";
  spec.n = 400;
  spec.dim = 2;
  spec.ticks = 6;
  Rng rng(3);
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(rng, spec));
  const StreamSchedule& stream = instance.stream;
  ASSERT_EQ(stream.ticks, 6u);
  ASSERT_EQ(stream.tick_balls.size(), 6u);
  ASSERT_EQ(stream.arrivals.size(), stream.arrival_tick.size());
  ASSERT_EQ(stream.arrivals.size(), stream.expiry_tick.size());
  ASSERT_GT(stream.arrivals.size(), instance.points.size());
  // The primary truth is the final tick's ball.
  EXPECT_EQ(stream.tick_balls.back().center, instance.primary().center);

  ASSERT_OK_AND_ASSIGN(
      IndexedDataset live,
      IndexedDataset::Create(PointSet(spec.dim), instance.domain));
  for (std::size_t u = 0; u < stream.ticks; ++u) {
    for (std::size_t i = 0; i < stream.arrivals.size(); ++i) {
      if (stream.expiry_tick[i] == u) live.Remove(i);
    }
    for (std::size_t i = 0; i < stream.arrivals.size(); ++i) {
      if (stream.arrival_tick[i] == u) {
        ASSERT_OK_AND_ASSIGN(const std::size_t id,
                             live.Insert(stream.arrivals[i]));
        ASSERT_EQ(id, i);  // Arrival order is insertion order.
      }
    }
    if (u == 0) {
      // Build the grid after the first tick so every later edit goes
      // through the incremental structural path, not a rebuild.
      std::vector<double> warm(live.active_size());
      live.BatchKnn(1, warm, nullptr);
      ASSERT_TRUE(live.grid_built());
    }
  }
  EXPECT_TRUE(live.grid_built());
  ASSERT_EQ(live.active_size(), instance.points.size());
  const PointSet replayed = live.ActiveView();
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    const auto got = replayed[i];
    const auto want = instance.points[i];
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin())) << i;
  }

  // Queries through the churned index equal a fresh index over the instance.
  ASSERT_OK_AND_ASSIGN(
      IndexedDataset fresh,
      IndexedDataset::Create(instance.points, instance.domain));
  const std::size_t m = live.active_size();
  std::vector<double> got(m * 4);
  std::vector<double> want(m * 4);
  live.BatchKnn(4, got, nullptr);
  fresh.BatchKnn(4, want, nullptr);
  EXPECT_EQ(got, want);
}

// End-to-end amortization contract: GoodRadius served by incrementally
// patched shared rows releases the same bytes as the rebuild-per-batch
// pipeline it replaces (same Rng seed, same noise draws).
TEST(StreamingGoodRadiusTest, SharedCountsMatchRebuildPipeline) {
  ScenarioSpec spec;
  spec.scenario = "planted_cluster";
  spec.n = 300;
  spec.dim = 2;
  Rng gen(17);
  ASSERT_OK_AND_ASSIGN(ScenarioInstance instance, GenerateScenario(gen, spec));

  std::vector<std::uint32_t> added;
  std::vector<std::uint32_t> removed;
  const std::size_t n0 = (2 * spec.n) / 3;
  const std::size_t t = 40;

  // Incremental pipeline: build rows once on the head, patch through churn.
  PointSet head(instance.points.dim());
  for (std::size_t i = 0; i < n0; ++i) head.Add(instance.points[i]);
  ASSERT_OK_AND_ASSIGN(IndexedDataset live,
                       IndexedDataset::Create(std::move(head),
                                              instance.domain));
  ASSERT_OK_AND_ASSIGN(KnnCappedCounts rows,
                       KnnCappedCounts::Build(live, t, spec.n));
  for (std::size_t i = 0; i < n0; i += 5) {
    live.Remove(i);
    removed.push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = n0; i < spec.n; ++i) {
    ASSERT_OK_AND_ASSIGN(const std::size_t id,
                         live.Insert(instance.points[i]));
    added.push_back(static_cast<std::uint32_t>(id));
  }
  ThreadPool pool(4);
  ASSERT_OK(rows.ApplyBatch(live, added, removed, &pool));
  // The stream touched a strict subset of the surviving rows.
  EXPECT_LT(rows.last_invalidated(), live.active_size());

  GoodRadiusOptions incremental;
  incremental.engine = GoodRadiusOptions::Engine::kSparseVector;
  incremental.max_profile_points = spec.n;
  incremental.shared_counts = &rows;
  Rng rng_a(7);
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult via_shared,
                       GoodRadius(rng_a, live, t, incremental));

  // Rebuild pipeline: a fresh index over the same surviving rows.
  ASSERT_OK_AND_ASSIGN(IndexedDataset rebuilt,
                       IndexedDataset::Create(live.ActiveView(),
                                              instance.domain));
  GoodRadiusOptions scratch = incremental;
  scratch.shared_counts = nullptr;
  Rng rng_b(7);
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult via_rebuild,
                       GoodRadius(rng_b, rebuilt, t, scratch));

  EXPECT_EQ(via_shared.radius, via_rebuild.radius);
  EXPECT_EQ(via_shared.grid_index, via_rebuild.grid_index);
  EXPECT_EQ(via_shared.gamma, via_rebuild.gamma);

  // A mismatched shared structure is rejected, not silently served.
  live.Remove(live.ActiveIds().front());
  EXPECT_FALSE(GoodRadius(rng_a, live, t, incremental).ok());
}

}  // namespace
}  // namespace dpcluster
