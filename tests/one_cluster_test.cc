// End-to-end tests for OneCluster (Theorem 3.2).

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/core/one_cluster.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

OneClusterOptions TestOptions(double eps) {
  OneClusterOptions o;
  o.params = {eps, 1e-8};
  o.beta = 0.1;
  return o;
}

TEST(OneClusterOptionsTest, Validation) {
  OneClusterOptions o = TestOptions(1.0);
  EXPECT_OK(o.Validate());
  o.radius_budget_fraction = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0);
  o.radius_budget_fraction = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0);
  o.params.delta = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

class OneClusterDimTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OneClusterDimTest, RecoversPlantedCluster) {
  const std::size_t d = GetParam();
  Rng rng(31 + d);
  PlantedClusterSpec spec;
  spec.dim = d;
  spec.levels = 1024;
  spec.cluster_radius = 0.015;
  spec.n = d >= 4 ? 3000 : 1200;
  spec.t = d >= 4 ? 2000 : 700;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  const OneClusterOptions options = TestOptions(8.0);

  int good = 0;
  const int trials = 3;
  for (int trial = 0; trial < trials; ++trial) {
    ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                         OneCluster(rng, w.points, w.t, w.domain, options));
    ASSERT_OK_AND_ASSIGN(EvalMetrics m, Evaluate(w.points, w.t, result.ball));
    // The released ball radius claim must capture most of t.
    if (static_cast<double>(m.captured) >=
        0.6 * static_cast<double>(w.t)) {
      ++good;
    }
    // The radius phase is a 4-approximation (+ grid slack).
    EXPECT_LE(result.radius_stage.radius,
              4.0 * 2.0 * m.r_opt_lower * 2.0 + 4.0 * w.domain.RadiusFromIndex(1));
  }
  EXPECT_GE(good, trials - 1) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Dims, OneClusterDimTest,
                         ::testing::Values<std::size_t>(1, 2, 4));

TEST(OneClusterTest, MinorityClusterIsFound) {
  // Two equal 30% clusters: no majority — the setting the paper's algorithm
  // handles and the noisy-mean baseline cannot.
  Rng rng(3);
  const ClusterWorkload w = MakeTwoClusters(rng, 1600, 2, 1024, 0.015, 0.3);
  const OneClusterOptions options = TestOptions(8.0);
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, w.points, w.t, w.domain, options));
  ASSERT_OK_AND_ASSIGN(EvalMetrics m, Evaluate(w.points, w.t, result.ball));
  EXPECT_GE(static_cast<double>(m.captured), 0.5 * static_cast<double>(w.t));
  // The effective center must sit on ONE of the two planted balls, not in the
  // middle: a ball of 5 planted radii around the released center must capture
  // >= t/2 points.
  EXPECT_LE(RadiusCapturing(w.points, result.ball.center, w.t / 2),
            5.0 * 0.015 + 0.1);
}

TEST(OneClusterTest, ZeroRadiusDataset) {
  // All points identical: radius stage fires the zero shortcut and the pipeline
  // must still produce a center essentially on the duplicates.
  Rng rng(4);
  const GridDomain domain(1024, 2);
  PointSet s(2);
  const std::vector<double> dup = {0.25, 0.75};
  for (int i = 0; i < 1200; ++i) s.Add(dup);
  const OneClusterOptions options = TestOptions(8.0);
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, s, 1000, domain, options));
  EXPECT_LT(Distance(result.ball.center, dup), 0.05);
}

TEST(OneClusterTest, BallRadiusClampedToCubeDiameter) {
  Rng rng(5);
  PlantedClusterSpec spec;
  spec.dim = 2;
  spec.n = 1000;
  spec.t = 600;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, w.points, w.t, w.domain, TestOptions(8.0)));
  EXPECT_LE(result.ball.radius, std::sqrt(2.0) + 1e-9);
}

TEST(OneClusterTest, RecommendedMinTIsActionable) {
  const GridDomain domain(1u << 16, 4);
  const OneClusterOptions options = TestOptions(2.0);
  const double min_t = RecommendedMinT(4000, domain, options);
  EXPECT_GT(min_t, 0.0);
  // Shrinks with epsilon.
  EXPECT_LT(RecommendedMinT(4000, domain, TestOptions(8.0)), min_t);
  // Grows with dimension (the sqrt(d)/eps term).
  const GridDomain wide(1u << 16, 64);
  EXPECT_GT(RecommendedMinT(4000, wide, options), min_t);
}

TEST(OneClusterTest, BudgetSplitRespectedInDiagnostics) {
  Rng rng(6);
  PlantedClusterSpec spec;
  spec.dim = 2;
  spec.n = 1200;
  spec.t = 700;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  OneClusterOptions options = TestOptions(8.0);
  options.radius_budget_fraction = 0.25;
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, w.points, w.t, w.domain, options));
  // With only a quarter of the budget, the radius stage's Gamma must be larger
  // than with the default half.
  OneClusterOptions even = TestOptions(8.0);
  GoodRadiusOptions r25 = options.radius;
  r25.params = options.params.Fraction(0.25);
  GoodRadiusOptions r50 = even.radius;
  r50.params = even.params.Fraction(0.5);
  EXPECT_GT(GoodRadiusGamma(w.domain, r25), GoodRadiusGamma(w.domain, r50));
  EXPECT_GT(result.center_stage.jl_dim, 0u);
}

}  // namespace
}  // namespace dpcluster
