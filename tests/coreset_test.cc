// The k-center coreset layer: construction invariants (weights sum to n,
// coverage radius is the true max assignment distance, duplicates collapse
// losslessly), thread-count bit-identity of the greedy traversal, the knob
// chain through GoodRadius/OneCluster/KCluster, and the service cache's
// coreset lease.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dpcluster/core/good_radius.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/coreset/coreset.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/service/index_cache.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

ClusterWorkload MakeWorkload(std::size_t n, std::uint64_t seed = 4711) {
  Rng rng(seed);
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = n / 8;
  spec.dim = 2;
  spec.levels = 1u << 10;
  spec.cluster_radius = 0.02;
  return MakePlantedCluster(rng, spec);
}

TEST(Coreset, SummaryInvariants) {
  const ClusterWorkload w = MakeWorkload(4096);
  CoresetOptions options;
  options.enabled = true;
  options.target_size = 256;
  ThreadPool pool(4);
  ASSERT_OK_AND_ASSIGN(CoresetSummary summary,
                       BuildCoreset(w.points, w.domain, options, &pool));
  ASSERT_EQ(summary.points.size(), summary.weights.size());
  ASSERT_EQ(summary.points.size(), summary.source_ids.size());
  ASSERT_LE(summary.points.size(), options.target_size);
  EXPECT_EQ(summary.input_size, w.points.size());

  // Weights are positive and sum to n.
  std::uint64_t mass = 0;
  for (const std::uint64_t weight : summary.weights) {
    EXPECT_GE(weight, 1u);
    mass += weight;
  }
  EXPECT_EQ(mass, w.points.size());

  // Every summary row is bit-for-bit its source input row.
  for (std::size_t i = 0; i < summary.points.size(); ++i) {
    const auto row = summary.points[i];
    const auto src = w.points[summary.source_ids[i]];
    for (std::size_t j = 0; j < w.points.dim(); ++j) {
      EXPECT_EQ(row[j], src[j]) << "summary row " << i << " coord " << j;
    }
  }

  // coverage_radius is the true max over inputs of the distance to the
  // nearest summary row (brute force).
  double max_nearest = 0.0;
  for (std::size_t i = 0; i < w.points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < summary.points.size(); ++c) {
      best = std::min(best, std::sqrt(SquaredDistanceRows(
                                w.points[i].data(), summary.points[c].data(),
                                w.points.dim())));
    }
    max_nearest = std::max(max_nearest, best);
  }
  EXPECT_NEAR(summary.coverage_radius, max_nearest, 1e-12);
}

TEST(Coreset, BitIdenticalAtAnyThreadCount) {
  const ClusterWorkload w = MakeWorkload(4096);
  CoresetOptions options;
  options.enabled = true;
  options.target_size = 256;
  ThreadPool serial(1);
  ASSERT_OK_AND_ASSIGN(CoresetSummary reference,
                       BuildCoreset(w.points, w.domain, options, &serial));
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(CoresetSummary summary,
                         BuildCoreset(w.points, w.domain, options, &pool));
    ASSERT_EQ(summary.points.size(), reference.points.size());
    EXPECT_EQ(summary.weights, reference.weights) << "threads " << threads;
    EXPECT_EQ(summary.source_ids, reference.source_ids);
    EXPECT_EQ(summary.coverage_radius, reference.coverage_radius);
    const std::span<const double> a = summary.points.Data();
    const std::span<const double> b = reference.points.Data();
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "threads " << threads;
  }
  // A null pool is the serial reference too.
  ASSERT_OK_AND_ASSIGN(CoresetSummary no_pool,
                       BuildCoreset(w.points, w.domain, options, nullptr));
  EXPECT_EQ(no_pool.weights, reference.weights);
  EXPECT_EQ(no_pool.coverage_radius, reference.coverage_radius);
}

TEST(Coreset, DuplicateHeavyInputCollapsesLosslessly) {
  // 8 distinct rows, each repeated 64 times: the dedup pass alone is the
  // whole coreset (m <= target), coverage radius exactly 0.
  PointSet s(2);
  const GridDomain domain(1u << 10, 2, 1.0);
  for (int rep = 0; rep < 64; ++rep) {
    for (int i = 0; i < 8; ++i) {
      const double x = domain.Snap(0.1 * static_cast<double>(i + 1));
      s.Add(std::vector<double>{x, x});
    }
  }
  CoresetOptions options;
  options.enabled = true;
  options.target_size = 256;
  ASSERT_OK_AND_ASSIGN(CoresetSummary summary,
                       BuildCoreset(s, domain, options, nullptr));
  EXPECT_EQ(summary.points.size(), 8u);
  EXPECT_EQ(summary.coverage_radius, 0.0);
  for (const std::uint64_t weight : summary.weights) EXPECT_EQ(weight, 64u);

  const CoresetSummary collapsed = CollapseDuplicates(s);
  EXPECT_EQ(collapsed.points.size(), 8u);
  EXPECT_EQ(collapsed.coverage_radius, 0.0);
}

TEST(Coreset, OptionsValidate) {
  CoresetOptions options;
  options.target_size = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.target_size = 16;
  EXPECT_OK(options.Validate());
}

// The knob chain: GoodRadius with the coreset stage enabled runs the whole
// radius phase on the weighted summary and equals calling it on the weighted
// index directly — and succeeds on inputs far above max_profile_points.
TEST(Coreset, GoodRadiusRunsThroughSummary) {
  const ClusterWorkload w = MakeWorkload(1u << 15);
  GoodRadiusOptions options;
  options.params = {4.0, 1e-9};
  options.beta = 0.1;
  options.coreset.enabled = true;
  options.coreset.min_points = 1024;
  options.coreset.target_size = 512;
  Rng rng(99);
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult via_knob,
                       GoodRadius(rng, w.points, w.t, w.domain, options));

  ThreadPool pool(2);
  ASSERT_OK_AND_ASSIGN(
      CoresetSummary summary,
      BuildCoreset(w.points, w.domain, options.coreset, &pool));
  ASSERT_OK_AND_ASSIGN(IndexedDataset index,
                       MakeWeightedIndex(std::move(summary), w.domain));
  GoodRadiusOptions direct = options;
  direct.coreset.enabled = false;
  Rng rng2(99);
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult via_index,
                       GoodRadius(rng2, index, w.t, direct));
  EXPECT_EQ(via_knob.radius, via_index.radius);
  EXPECT_EQ(via_knob.grid_index, via_index.grid_index);
}

TEST(Coreset, OneClusterAndKClusterRunCompressed) {
  const ClusterWorkload w = MakeWorkload(1u << 14);

  OneClusterOptions oc;
  oc.params = {8.0, 1e-9};
  oc.beta = 0.2;
  oc.coreset.enabled = true;
  oc.coreset.min_points = 1024;
  oc.coreset.target_size = 512;
  Rng rng(7);
  ASSERT_OK_AND_ASSIGN(OneClusterResult one,
                       OneCluster(rng, w.points, w.t, w.domain, oc));
  EXPECT_EQ(one.ball.center.size(), w.points.dim());

  KClusterOptions kc;
  kc.params = {16.0, 1e-9};
  kc.beta = 0.2;
  kc.k = 2;
  kc.coreset.enabled = true;
  kc.coreset.min_points = 1024;
  kc.coreset.target_size = 512;
  Rng krng(11);
  ASSERT_OK_AND_ASSIGN(KClusterResult clusters,
                       KCluster(krng, w.points, w.domain, kc));
  EXPECT_LE(clusters.rounds.size(), kc.k);
  // Uncovered mass is reported in expanded terms.
  EXPECT_LE(clusters.uncovered, w.points.size());
}

// The service cache: a coreset-requesting acquire leases the weighted
// summary (built once, reused on the next acquire), and a plain acquire on
// the same key still gets the raw index.
TEST(Coreset, IndexCacheLeasesWeightedSummary) {
  const ClusterWorkload w = MakeWorkload(4096);
  CoresetOptions coreset;
  coreset.enabled = true;
  coreset.min_points = 1024;
  coreset.target_size = 256;
  IndexCache cache(2);
  {
    IndexCache::Lease lease =
        cache.Acquire("key", w.points, w.domain, coreset);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_TRUE(lease.index()->weighted());
    EXPECT_EQ(lease.index()->total_mass(), w.points.size());
    EXPECT_LE(lease.index()->size(), coreset.target_size);
  }
  const IndexedDataset* first = nullptr;
  {
    IndexCache::Lease lease =
        cache.Acquire("key", w.points, w.domain, coreset);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_TRUE(lease.index()->weighted());
    first = lease.index().get();
  }
  {
    // Cached: the same summary object is handed out again.
    IndexCache::Lease lease =
        cache.Acquire("key", w.points, w.domain, coreset);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_EQ(lease.index().get(), first);
  }
  {
    // A plain acquire on the same key leases the raw index.
    IndexCache::Lease lease = cache.Acquire("key", w.points, w.domain);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_FALSE(lease.index()->weighted());
    EXPECT_EQ(lease.index()->size(), w.points.size());
  }
  const IndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
}

// Below min_points the knob is inert: the pipeline must not compress.
TEST(Coreset, MinPointsGatesCompression) {
  const ClusterWorkload w = MakeWorkload(512);
  GoodRadiusOptions with_knob;
  with_knob.params = {4.0, 1e-9};
  with_knob.beta = 0.1;
  with_knob.coreset.enabled = true;  // min_points default 65536 >> 512
  GoodRadiusOptions without = with_knob;
  without.coreset.enabled = false;
  Rng rng1(5);
  Rng rng2(5);
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult a,
                       GoodRadius(rng1, w.points, w.t, w.domain, with_knob));
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult b,
                       GoodRadius(rng2, w.points, w.t, w.domain, without));
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_EQ(a.grid_index, b.grid_index);
}

}  // namespace
}  // namespace dpcluster
