// Remark 3.3: the construction extends verbatim to domains with grid step l
// and axis length L by replacing |X| with L/l. GridDomain carries the axis
// length through the whole pipeline; these tests run the algorithms on a
// rescaled cube and check the guarantees scale with it.

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/core/one_cluster.h"
#include "dpcluster/core/radius_refine.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// A planted cluster in a [0, axis]^2 cube.
PointSet RescaledCluster(Rng& rng, const GridDomain& domain, std::size_t n,
                         std::size_t t, double radius,
                         std::vector<double>* center_out) {
  PointSet s(2);
  std::vector<double> center(2);
  for (double& c : center) {
    c = radius + rng.NextDouble() * (domain.axis_length() - 2.0 * radius);
  }
  *center_out = center;
  for (std::size_t i = 0; i < t; ++i) s.Add(SampleBall(rng, center, radius));
  std::vector<double> p(2);
  for (std::size_t i = t; i < n; ++i) {
    p[0] = rng.NextDouble() * domain.axis_length();
    p[1] = rng.NextDouble() * domain.axis_length();
    s.Add(p);
  }
  domain.SnapAll(s);
  return s;
}

TEST(RescaledDomainTest, RadiusGridScalesWithAxisLength) {
  const GridDomain unit(1024, 2, 1.0);
  const GridDomain wide(1024, 2, 100.0);
  EXPECT_EQ(unit.RadiusGridSize(), wide.RadiusGridSize());
  EXPECT_NEAR(wide.RadiusFromIndex(17), 100.0 * unit.RadiusFromIndex(17), 1e-9);
  EXPECT_NEAR(wide.step(), 100.0 * unit.step(), 1e-9);
}

TEST(RescaledDomainTest, OneClusterOnKilometerScaleDomain) {
  // Same instance as the unit-cube tests but in a [0, 1000]^2 "meters" cube.
  Rng rng(51);
  const GridDomain domain(1024, 2, 1000.0);
  std::vector<double> planted;
  const PointSet s = RescaledCluster(rng, domain, 1200, 700, 15.0, &planted);

  OneClusterOptions options;
  options.params = {8.0, 1e-8};
  options.beta = 0.1;
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, s, 700, domain, options));
  // The radius stage's 4-approx guarantee, in rescaled units.
  ASSERT_OK_AND_ASSIGN(Ball two, TwoApproxSmallestBall(s, 700));
  EXPECT_LE(result.radius_stage.radius,
            4.0 * two.radius + 2.0 * domain.RadiusFromIndex(1));
  // The released center sits on the cluster (within a few cluster radii).
  EXPECT_LE(RadiusCapturing(s, result.ball.center, 560), 150.0);
  EXPECT_LE(Distance(result.ball.center, planted), 100.0);
}

TEST(RescaledDomainTest, RefineRadiusInRescaledUnits) {
  Rng rng(52);
  const GridDomain domain(1024, 2, 1000.0);
  std::vector<double> planted;
  const PointSet s = RescaledCluster(rng, domain, 1500, 900, 10.0, &planted);
  RadiusRefineOptions options;
  options.epsilon = 2.0;
  ASSERT_OK_AND_ASSIGN(double r, RefineRadius(rng, s, planted, 900, domain,
                                              options));
  EXPECT_GT(r, 1.0);    // Meter-scale, not unit-cube-scale.
  EXPECT_LT(r, 40.0);   // A small multiple of the planted 10m radius.
}

TEST(RescaledDomainTest, GuaranteeRadiusClampedToRescaledDiameter) {
  Rng rng(53);
  const GridDomain domain(1024, 2, 1000.0);
  std::vector<double> planted;
  const PointSet s = RescaledCluster(rng, domain, 1000, 600, 12.0, &planted);
  OneClusterOptions options;
  options.params = {8.0, 1e-8};
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, s, 600, domain, options));
  EXPECT_LE(result.ball.radius, 1000.0 * std::sqrt(2.0) + 1e-6);
}

}  // namespace
}  // namespace dpcluster
