// Tests for vector kernels and the dense matrix.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/la/matrix.h"
#include "dpcluster/la/vector_ops.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(VectorOpsTest, DotAndNorm) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2(x), std::sqrt(14.0));
}

TEST(VectorOpsTest, Distances) {
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> y = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(x, y), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(x, y), 25.0);
}

TEST(VectorOpsTest, AxpyScaleAddSubtract) {
  std::vector<double> y = {1.0, 1.0};
  const std::vector<double> x = {2.0, -1.0};
  Axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  Scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  const auto diff = Subtract(y, x);
  EXPECT_DOUBLE_EQ(diff[0], 1.5);
  const auto sum = Add(diff, x);
  EXPECT_DOUBLE_EQ(sum[0], y[0]);
}

TEST(MatrixTest, MultiplyMatchesManual) {
  Matrix m(2, 3);
  // [[1 2 3], [4 5 6]]
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      m.At(r, c) = static_cast<double>(r * 3 + c + 1);
    }
  }
  const std::vector<double> x = {1.0, 0.0, -1.0};
  std::vector<double> out(2);
  m.Multiply(x, out);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(MatrixTest, MultiplyTransposedMatchesTransposeThenMultiply) {
  Rng rng(1);
  Matrix m(4, 3);
  for (double& v : m.MutableData()) v = rng.NextDouble() - 0.5;
  std::vector<double> x = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> a(3);
  std::vector<double> b(3);
  m.MultiplyTransposed(x, a);
  m.Transposed().Multiply(x, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(MatrixTest, MatrixProductAssociatesWithVector) {
  Rng rng(2);
  Matrix a(3, 4);
  Matrix b(4, 2);
  for (double& v : a.MutableData()) v = rng.NextDouble() - 0.5;
  for (double& v : b.MutableData()) v = rng.NextDouble() - 0.5;
  const Matrix ab = a.MultiplyMatrix(b);
  const std::vector<double> x = {0.7, -1.3};
  std::vector<double> bx(4);
  std::vector<double> abx(3);
  std::vector<double> direct(3);
  b.Multiply(x, bx);
  a.Multiply(bx, abx);
  ab.Multiply(x, direct);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(abx[i], direct[i], 1e-12);
}

TEST(MatrixTest, IdentityBehaves) {
  const Matrix eye = Matrix::Identity(5);
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> out(5);
  eye.Multiply(x, out);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(out[i], x[i]);
}

TEST(MatrixTest, RowViewIsMutable) {
  Matrix m(2, 2);
  m.Row(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 9.0);
}

}  // namespace
}  // namespace dpcluster
