// Tests for RecConcave (Theorem 4.3): utility on quasi-concave promise
// problems, depth/promise accounting, and argument validation.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/dp/rec_concave.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// A tent function peaking at `peak` with the given max value, spanning the
// whole domain (slope 2.5*max/domain), sampled into ~256 pieces. The sampling
// error per piece is max/100, far below the promise slack the tests allow.
StepFunction Tent(std::uint64_t domain, std::uint64_t peak, double max_value) {
  std::vector<std::uint64_t> starts;
  std::vector<double> values;
  const double slope = 2.5 * max_value / static_cast<double>(domain);
  const std::uint64_t step = std::max<std::uint64_t>(1, domain / 256);
  for (std::uint64_t x = 0; x < domain; x += step) {
    // Use the sample point closest to the peak within [x, x+step) so the
    // sampled function's max equals the true max.
    const std::uint64_t probe =
        (peak >= x && peak < x + step) ? peak : x;
    const double dist =
        static_cast<double>(probe > peak ? probe - peak : peak - probe);
    const double v = std::max(0.0, max_value - slope * dist);
    if (!values.empty() && values.back() == v) continue;
    starts.push_back(x);
    values.push_back(v);
  }
  if (starts.empty() || starts[0] != 0) {
    starts.insert(starts.begin(), 0);
    values.insert(values.begin(), 0.0);
  }
  return StepFunction::FromBreakpoints(domain, std::move(starts),
                                       std::move(values));
}

TEST(RecConcaveOptionsTest, Validation) {
  RecConcaveOptions o;
  EXPECT_OK(o.Validate());
  o.alpha = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = RecConcaveOptions{};
  o.beta = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = RecConcaveOptions{};
  o.epsilon = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = RecConcaveOptions{};
  o.base_domain_size = 1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(RecConcaveTest, RejectsNonPositivePromise) {
  Rng rng(1);
  RecConcaveOptions o;
  EXPECT_FALSE(RecConcave(rng, StepFunction::Constant(10, 1.0), 0.0, o).ok());
}

TEST(RecConcaveDepthTest, SmallDomainsAreBaseCase) {
  RecConcaveOptions o;
  o.base_domain_size = 32;
  EXPECT_EQ(RecConcaveDepth(10, o), 0);
  EXPECT_EQ(RecConcaveDepth(32, o), 0);
  EXPECT_EQ(RecConcaveDepth(33, o), 1);
}

TEST(RecConcaveDepthTest, DepthIsIteratedLogLike) {
  RecConcaveOptions o;
  o.base_domain_size = 4;
  // domain -> log2(domain)+1 per level: 2^20 -> 21 -> 5 -> 3 (base).
  EXPECT_EQ(RecConcaveDepth(1u << 20, o), 3);
  // Even astronomically large domains stay shallow — the log* structure.
  EXPECT_LE(RecConcaveDepth(~std::uint64_t{0}, o), 5);
}

TEST(RecConcaveMinPromiseTest, GrowsWithDomainShrinksWithEpsilon) {
  RecConcaveOptions o;
  o.epsilon = 1.0;
  const double p_small = RecConcaveMinPromise(1u << 10, o);
  const double p_big = RecConcaveMinPromise(1u << 30, o);
  EXPECT_GT(p_big, p_small);
  o.epsilon = 4.0;
  EXPECT_LT(RecConcaveMinPromise(1u << 30, o), p_big);
}

class RecConcaveUtilityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecConcaveUtilityTest, ReturnsGoodSolutionOnTent) {
  const std::uint64_t domain = GetParam();
  Rng rng(17);
  RecConcaveOptions o;
  o.alpha = 0.5;
  o.beta = 0.05;
  o.epsilon = 2.0;
  const double need = RecConcaveMinPromise(domain, o);
  const double promise = need * 1.1;
  // A tent peaking above the promise at domain/3.
  const StepFunction q = Tent(domain, domain / 3, promise * 1.1);
  ASSERT_TRUE(q.IsQuasiConcave());
  ASSERT_GE(q.MaxValue(), promise);

  int bad = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(std::uint64_t pick, RecConcave(rng, q, promise, o));
    if (q.ValueAt(pick) < (1.0 - o.alpha) * promise) ++bad;
  }
  // Allow the 5% failure budget plus slack.
  EXPECT_LE(bad, trials / 10) << "domain=" << domain;
}

INSTANTIATE_TEST_SUITE_P(Domains, RecConcaveUtilityTest,
                         ::testing::Values<std::uint64_t>(64, 4096, 1u << 20));

TEST(RecConcaveTest, PlateauQuality) {
  // A wide plateau at the promise: everything on it is acceptable.
  Rng rng(3);
  RecConcaveOptions o;
  o.epsilon = 2.0;
  const std::uint64_t domain = 1u << 16;
  const double promise = RecConcaveMinPromise(domain, o) * 1.2;
  const StepFunction q = StepFunction::FromBreakpoints(
      domain, {0, 10000, 50000}, {0.0, promise, 0.0});
  int bad = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(std::uint64_t pick, RecConcave(rng, q, promise, o));
    if (q.ValueAt(pick) < 0.5 * promise) ++bad;
  }
  EXPECT_LE(bad, 4);
}

TEST(RecConcaveTest, MonotoneQualityPicksHighEnd) {
  // Non-decreasing quality (a valid quasi-concave shape): good solutions sit
  // at the right edge.
  Rng rng(4);
  RecConcaveOptions o;
  o.epsilon = 2.0;
  const std::uint64_t domain = 1u << 14;
  const double promise = RecConcaveMinPromise(domain, o) * 1.2;
  const StepFunction q = StepFunction::FromBreakpoints(
      domain, {0, domain - 100}, {0.0, promise});
  int good = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(std::uint64_t pick, RecConcave(rng, q, promise, o));
    good += (q.ValueAt(pick) >= 0.5 * promise);
  }
  EXPECT_GE(good, 36);
}

TEST(RecConcaveTest, HugeDomainWithFewPiecesIsFast) {
  Rng rng(5);
  RecConcaveOptions o;
  o.epsilon = 4.0;
  const std::uint64_t domain = 1ull << 40;
  const double promise = RecConcaveMinPromise(domain, o) * 1.5;
  const StepFunction q = StepFunction::FromBreakpoints(
      domain, {0, 1ull << 39, (1ull << 39) + 4096}, {0.0, promise, 0.0});
  ASSERT_OK_AND_ASSIGN(std::uint64_t pick, RecConcave(rng, q, promise, o));
  // Just completing quickly on a 2^40 domain is the point; sanity-check range.
  EXPECT_LT(pick, domain);
}

}  // namespace
}  // namespace dpcluster
