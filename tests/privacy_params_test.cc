// Pins the documented semantics of PrivacyParams, in particular
// PrivacyParams::Fraction: it scales BOTH epsilon and delta. Splitting delta
// proportionally is a policy choice of this library (basic composition only
// requires per-phase deltas to SUM to the total), chosen so complementary
// fractions recompose exactly to the original budget.

#include <gtest/gtest.h>

#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/privacy_params.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(PrivacyParamsTest, FractionScalesBothCoordinates) {
  const PrivacyParams budget{2.0, 1e-8};
  const PrivacyParams quarter = budget.Fraction(0.25);
  EXPECT_DOUBLE_EQ(quarter.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(quarter.delta, 2.5e-9);  // delta scales too — by design.
}

TEST(PrivacyParamsTest, FractionOfOneIsIdentity) {
  const PrivacyParams budget{1.7, 3e-9};
  const PrivacyParams whole = budget.Fraction(1.0);
  EXPECT_DOUBLE_EQ(whole.epsilon, budget.epsilon);
  EXPECT_DOUBLE_EQ(whole.delta, budget.delta);
}

TEST(PrivacyParamsTest, ComplementaryFractionsRecomposeToBudget) {
  // The point of proportional delta-splitting: phases carved with f and 1-f
  // basic-compose back to exactly the original budget, in both coordinates.
  const PrivacyParams budget{4.0, 1e-9};
  for (double f : {0.1, 0.25, 0.5, 0.9}) {
    const PrivacyParams a = budget.Fraction(f);
    const PrivacyParams b = budget.Fraction(1.0 - f);
    Accountant ledger;
    ledger.Charge("phase_a", a);
    ledger.Charge("phase_b", b);
    const PrivacyParams total = ledger.BasicTotal();
    EXPECT_NEAR(total.epsilon, budget.epsilon, 1e-12) << "f=" << f;
    EXPECT_NEAR(total.delta, budget.delta, 1e-21) << "f=" << f;
  }
}

TEST(PrivacyParamsTest, ValidateRejectsNonPositiveEpsilonAndBadDelta) {
  EXPECT_OK((PrivacyParams{1.0, 0.0}).Validate());
  EXPECT_FALSE((PrivacyParams{0.0, 1e-9}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, 1.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, -1e-9}).Validate().ok());
  // The Gaussian-style variant additionally needs delta > 0.
  EXPECT_FALSE((PrivacyParams{1.0, 0.0}).ValidateWithPositiveDelta().ok());
  EXPECT_OK((PrivacyParams{1.0, 1e-12}).ValidateWithPositiveDelta());
}

}  // namespace
}  // namespace dpcluster
