// Tests for randomly shifted interval partitions and box partitions
// (GoodCenter steps 3-4).

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "dpcluster/geo/partition.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(ShiftedAxisPartitionTest, IndexAndLeft) {
  const ShiftedAxisPartition p{0.3, 1.0};
  EXPECT_EQ(p.IndexOf(0.3), 0);
  EXPECT_EQ(p.IndexOf(1.29), 0);
  EXPECT_EQ(p.IndexOf(1.31), 1);
  EXPECT_EQ(p.IndexOf(0.29), -1);
  EXPECT_DOUBLE_EQ(p.LeftOf(2), 2.3);
}

TEST(ShiftedAxisPartitionTest, EveryPointHasConsistentInterval) {
  Rng rng(1);
  const ShiftedAxisPartition p{rng.NextDouble() * 0.5, 0.5};
  for (int i = 0; i < 1000; ++i) {
    const double x = (rng.NextDouble() - 0.5) * 20.0;
    const std::int64_t j = p.IndexOf(x);
    EXPECT_GE(x, p.LeftOf(j) - 1e-12);
    EXPECT_LT(x, p.LeftOf(j + 1) + 1e-12);
  }
}

TEST(BoxPartitionTest, BoxIndexMatchesAxes) {
  std::vector<ShiftedAxisPartition> axes = {{0.0, 1.0}, {0.5, 2.0}};
  const BoxPartition part(axes);
  const std::vector<double> p = {1.5, 2.6};
  const auto idx = part.BoxIndexOf(p);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 1);  // [2.5, 4.5) with shift .5 length 2.
}

TEST(BoxPartitionTest, BoxForContainsItsPoints) {
  Rng rng(2);
  const BoxPartition part(rng, 4, 0.7);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p(4);
    for (double& x : p) x = (rng.NextDouble() - 0.5) * 10.0;
    const auto idx = part.BoxIndexOf(p);
    const AxisBox box = part.BoxFor(idx);
    EXPECT_TRUE(box.Contains(p));
  }
}

TEST(BoxPartitionTest, ShiftsInRange) {
  Rng rng(3);
  const BoxPartition part(rng, 8, 2.5);
  for (std::size_t a = 0; a < 8; ++a) {
    EXPECT_GE(part.axis(a).shift, 0.0);
    EXPECT_LT(part.axis(a).shift, 2.5);
    EXPECT_DOUBLE_EQ(part.axis(a).length, 2.5);
  }
}

TEST(BoxPartitionTest, CloseCloudLandsInOneBoxOften) {
  // A cloud of diameter 3r inside boxes of side 60r should usually land in a
  // single box — the success event GoodCenter's retry loop waits for.
  Rng rng(4);
  int single = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const BoxPartition part(rng, 2, 60.0);
    const double base_x = (rng.NextDouble() - 0.5) * 500.0;
    const double base_y = (rng.NextDouble() - 0.5) * 500.0;
    std::unordered_map<std::vector<std::int64_t>, int, BoxIndexHash> boxes;
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> p = {base_x + rng.NextDouble() * 3.0,
                                     base_y + rng.NextDouble() * 3.0};
      ++boxes[part.BoxIndexOf(p)];
    }
    if (boxes.size() == 1) ++single;
  }
  // Per-axis failure ~3/60, two axes => ~90% single-box trials.
  EXPECT_GT(single, trials * 3 / 4);
}

TEST(BoxIndexHashTest, EqualKeysSameHashDistinctKeysMostlyDiffer) {
  const BoxIndexHash hash;
  const std::vector<std::int64_t> a = {1, -2, 3};
  const std::vector<std::int64_t> b = {1, -2, 3};
  EXPECT_EQ(hash(a), hash(b));
  int collisions = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::vector<std::int64_t> x = {i, 0};
    const std::vector<std::int64_t> y = {0, i};
    if (hash(x) == hash(y)) ++collisions;
  }
  EXPECT_LT(collisions, 5);
}

}  // namespace
}  // namespace dpcluster
