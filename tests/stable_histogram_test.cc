// Tests for the stability-based histogram (Theorem 2.5).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_map>

#include "dpcluster/dp/stable_histogram.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using Counts = std::unordered_map<std::string, std::size_t, std::hash<std::string>>;

TEST(StableHistogramTest, EmptyHistogramFails) {
  Rng rng(1);
  const Counts counts;
  const PrivacyParams p{1.0, 1e-9};
  EXPECT_EQ(ChooseHeavyCell(rng, counts, p).status().code(),
            StatusCode::kNoPrivateAnswer);
}

TEST(StableHistogramTest, RejectsZeroDelta) {
  Rng rng(2);
  Counts counts{{"a", 100}};
  const PrivacyParams p{1.0, 0.0};
  EXPECT_EQ(ChooseHeavyCell(rng, counts, p).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StableHistogramTest, PicksTheHeavyCell) {
  Rng rng(3);
  const PrivacyParams p{1.0, 1e-9};
  Counts counts{{"heavy", 500}, {"light", 3}, {"mid", 20}};
  int correct = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(auto choice, ChooseHeavyCell(rng, counts, p));
    correct += (choice.key == "heavy");
  }
  EXPECT_EQ(correct, trials);
}

TEST(StableHistogramTest, SuppressesWhenEverythingIsLight) {
  Rng rng(4);
  const PrivacyParams p{0.5, 1e-12};
  // Threshold = 1 + (2/eps) ln(2/delta) ~ 113; counts of 1 never survive.
  Counts counts{{"a", 1}, {"b", 1}, {"c", 1}};
  int suppressed = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    if (!ChooseHeavyCell(rng, counts, p).ok()) ++suppressed;
  }
  EXPECT_EQ(suppressed, trials);
}

TEST(StableHistogramTest, SuppressionThresholdFormula) {
  const PrivacyParams p{2.0, 1e-6};
  EXPECT_NEAR(StableHistogramBounds::SuppressionThreshold(p),
              1.0 + (2.0 / 2.0) * std::log(2.0 / 1e-6), 1e-12);
}

TEST(StableHistogramTest, NoisyCountCloseToTrueCount) {
  Rng rng(5);
  const PrivacyParams p{1.0, 1e-9};
  Counts counts{{"heavy", 400}};
  double sum = 0.0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(auto choice, ChooseHeavyCell(rng, counts, p));
    sum += choice.noisy_count;
  }
  // Conditioned on survival (virtually always here) the Laplace noise has a
  // slight positive selection bias; stay within a loose band.
  EXPECT_NEAR(sum / trials, 400.0, 2.0);
}

// Theorem 2.5 utility: if the max cell holds T >= RequiredMaxCount elements,
// the returned cell holds at least T - CountLoss with probability >= 1 - beta.
class StableHistogramUtilityTest : public ::testing::TestWithParam<double> {};

TEST_P(StableHistogramUtilityTest, UtilityBoundHolds) {
  const double eps = GetParam();
  Rng rng(42);
  const PrivacyParams p{eps, 1e-9};
  const double beta = 0.05;
  const std::size_t n = 4000;
  const auto required = static_cast<std::size_t>(
      std::ceil(StableHistogramBounds::RequiredMaxCount(p, n, beta)));
  const double loss = StableHistogramBounds::CountLoss(p, n, beta);

  Counts counts;
  counts["best"] = required + 10;
  counts["rival"] = required / 2;
  for (int i = 0; i < 50; ++i) counts["junk" + std::to_string(i)] = 2;

  int bad = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    auto choice = ChooseHeavyCell(rng, counts, p);
    if (!choice.ok()) {
      ++bad;
      continue;
    }
    if (static_cast<double>(counts[choice->key]) <
        static_cast<double>(counts["best"]) - loss) {
      ++bad;
    }
  }
  EXPECT_LE(static_cast<double>(bad) / trials, beta) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, StableHistogramUtilityTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

TEST(StableHistogramTest, ZeroCountCellsNeverReturned) {
  Rng rng(6);
  const PrivacyParams p{1.0, 1e-9};
  Counts counts{{"empty", 0}, {"real", 300}};
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(auto choice, ChooseHeavyCell(rng, counts, p));
    EXPECT_EQ(choice.key, "real");
  }
}

}  // namespace
}  // namespace dpcluster
