// Cross-module integration tests: full pipelines composed the way the
// examples and benches use them, plus determinism checks.

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/core/one_cluster.h"
#include "dpcluster/core/outlier.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(IntegrationTest, DeterministicGivenSeed) {
  PlantedClusterSpec spec;
  spec.n = 900;
  spec.t = 500;
  spec.dim = 2;
  OneClusterOptions options;
  options.params = {8.0, 1e-8};
  options.beta = 0.1;

  Rng rng_a(77);
  const ClusterWorkload wa = MakePlantedCluster(rng_a, spec);
  Rng rng_b(77);
  const ClusterWorkload wb = MakePlantedCluster(rng_b, spec);

  ASSERT_OK_AND_ASSIGN(OneClusterResult a,
                       OneCluster(rng_a, wa.points, wa.t, wa.domain, options));
  ASSERT_OK_AND_ASSIGN(OneClusterResult b,
                       OneCluster(rng_b, wb.points, wb.t, wb.domain, options));
  ASSERT_EQ(a.ball.center.size(), b.ball.center.size());
  for (std::size_t i = 0; i < a.ball.center.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ball.center[i], b.ball.center[i]);
  }
  EXPECT_DOUBLE_EQ(a.ball.radius, b.ball.radius);
}

TEST(IntegrationTest, OutlierScreeningImprovesDownstreamMean) {
  // The Section 1.1 motivation, end to end: estimate a private mean with and
  // without first screening outliers; the screened estimate must be closer to
  // the clean-cluster mean because its reach (sensitivity) is far smaller.
  Rng rng(5);
  const ClusterWorkload w =
      MakeOutlierContaminated(rng, 4000, 2, 1u << 12, 0.02, 0.9);

  // Without screening: NoisyAverage over the whole cube.
  const std::vector<double> cube_center = {0.5, 0.5};
  ASSERT_OK_AND_ASSIGN(
      NoisyAverageOutput raw,
      NoisyAverage(rng, w.points, cube_center, std::sqrt(2.0) / 2.0, {1.0, 1e-8}));

  // With screening (same total privacy story: screen + average).
  OutlierScreenOptions so;
  so.inlier_fraction = 0.9;
  so.inflation = 1.0;
  so.one_cluster.params = {8.0, 1e-8};
  so.one_cluster.beta = 0.1;
  ASSERT_OK_AND_ASSIGN(OutlierScreen screen,
                       BuildOutlierScreen(rng, w.points, w.domain, so));
  ASSERT_OK_AND_ASSIGN(
      NoisyAverageOutput screened,
      NoisyAverage(rng, w.points, screen.ball.center, screen.ball.radius,
                   {1.0, 1e-8}));

  // The clean mean is essentially the planted center.
  const double err_raw = Distance(raw.average, w.planted.center);
  const double err_screened = Distance(screened.average, w.planted.center);
  // Screening restricts to the cluster ball: both less bias (outliers dropped)
  // and less noise (smaller reach). It should win comfortably.
  EXPECT_LT(err_screened, err_raw + 0.05);
  EXPECT_LT(err_screened, 0.2);
}

TEST(IntegrationTest, SampleAggregateOverClusteredEstimates) {
  // SA where the estimator itself is a cluster-center finder: blocks of
  // clustered data produce tightly concentrated estimates; the 1-cluster
  // aggregator must find them even though a naive mean would be dragged by
  // the contaminated blocks.
  Rng rng(6);
  const std::size_t n = 30000;
  PointSet s(1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = (i % 10 == 0) ? rng.NextDouble()  // 10% junk rows.
                                   : 0.42 + 0.01 * (rng.NextDouble() - 0.5);
    s.Add(std::vector<double>{x});
  }
  SampleAggregateOptions options;
  options.params = {8.0, 1e-8};
  options.beta = 0.2;
  options.block_size = 10;
  options.alpha = 0.9;
  const GridDomain out_domain(1u << 12, 1);
  ASSERT_OK_AND_ASSIGN(
      SampleAggregateResult result,
      SampleAggregate(rng, s, MedianEstimator(), out_domain, options));
  EXPECT_NEAR(result.point[0], 0.42, 0.05);
}

TEST(IntegrationTest, MetricsRoundTripOnPipelineOutput) {
  Rng rng(7);
  PlantedClusterSpec spec;
  spec.n = 1000;
  spec.t = 600;
  spec.dim = 2;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  OneClusterOptions options;
  options.params = {8.0, 1e-8};
  ASSERT_OK_AND_ASSIGN(OneClusterResult result,
                       OneCluster(rng, w.points, w.t, w.domain, options));
  ASSERT_OK_AND_ASSIGN(EvalMetrics m, Evaluate(w.points, w.t, result.ball));
  EXPECT_EQ(static_cast<double>(w.t) - static_cast<double>(m.captured), m.delta);
  EXPECT_GE(m.w_reported, 0.0);
  EXPECT_GE(m.tight_radius, 0.0);
}

}  // namespace
}  // namespace dpcluster
