// Structural property tests tying the implementation to the paper's proofs:
// quasi-concavity of the GoodRadius quality, the subsampled radius stage,
// an exponential-mechanism privacy audit, and the k-means estimator's
// canonical-output contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/core/good_radius.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/core/radius_profile.h"
#include "dpcluster/data/registry.h"
#include "dpcluster/dp/exponential_mechanism.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

// Rebuilds Algorithm 1's quality Q(g) = 1/2 min{t - L(r_g/2), L(r_g) - t + 4G}
// from a profile, the way GoodRadius does internally.
StepFunction BuildQualityFromProfile(const RadiusProfile& profile, double t,
                                     double gamma) {
  const std::uint64_t grid = profile.solution_grid_size();
  std::vector<std::uint64_t> starts;
  std::vector<double> values;
  for (std::uint64_t g = 0; g < grid; ++g) {
    const double q =
        0.5 * std::min(t - profile.LAtHalfSolutionIndex(g),
                       profile.LAtSolutionIndex(g) - t + 4.0 * gamma);
    if (!values.empty() && values.back() == q) continue;
    starts.push_back(g);
    values.push_back(q);
  }
  return StepFunction::FromBreakpoints(grid, std::move(starts),
                                       std::move(values));
}

// Lemma 4.6's structural heart: Q(., S) is quasi-concave for EVERY dataset,
// because L is monotone in the radius. Checked densely on random data.
class QualityQuasiConcaveTest : public ::testing::TestWithParam<int> {};

TEST_P(QualityQuasiConcaveTest, QualityIsQuasiConcave) {
  Rng rng(1000 + GetParam());
  const GridDomain domain(128, 2);
  PointSet s = testing_util::UniformCube(rng, 40, 2);
  domain.SnapAll(s);
  const std::size_t t = 1 + rng.NextUint64(39);
  ASSERT_OK_AND_ASSIGN(RadiusProfile profile,
                       RadiusProfile::Build(s, t, domain, 64));
  for (double gamma : {1.0, 5.0, 50.0}) {
    const StepFunction q =
        BuildQualityFromProfile(profile, static_cast<double>(t), gamma);
    EXPECT_TRUE(q.IsQuasiConcave()) << "t=" << t << " gamma=" << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityQuasiConcaveTest, ::testing::Range(0, 8));

// And the promise: some grid radius reaches quality >= Gamma whenever
// t <= n and L(0) < t - 2*Gamma (Lemma 4.6's case analysis).
TEST(QualityPromiseTest, PromiseHoldsWhenZeroShortcutDoesNot) {
  Rng rng(7);
  const GridDomain domain(256, 2);
  for (int trial = 0; trial < 10; ++trial) {
    PointSet s = testing_util::UniformCube(rng, 60, 2);
    domain.SnapAll(s);
    const std::size_t t = 10 + rng.NextUint64(50);
    ASSERT_OK_AND_ASSIGN(RadiusProfile profile,
                         RadiusProfile::Build(s, t, domain, 64));
    const double gamma = 2.0;
    if (profile.LAtZero() >= static_cast<double>(t) - 2.0 * gamma) continue;
    const StepFunction q =
        BuildQualityFromProfile(profile, static_cast<double>(t), gamma);
    EXPECT_GE(q.MaxValue(), gamma) << "t=" << t;
  }
}

TEST(SubsampledGoodRadiusTest, LargeInputResolvedViaSubsample) {
  Rng rng(11);
  PlantedClusterSpec spec;
  spec.n = 6000;  // Above the profile cap below.
  spec.t = 3000;
  spec.dim = 2;
  spec.cluster_radius = 0.02;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  GoodRadiusOptions options;
  options.params = {4.0, 1e-9};
  options.beta = 0.1;
  options.max_profile_points = 2000;

  // Without opting in: ResourceExhausted.
  EXPECT_EQ(GoodRadius(rng, w.points, w.t, w.domain, options).status().code(),
            StatusCode::kResourceExhausted);

  // With subsampling: a radius close to the optimum.
  options.subsample_large_inputs = true;
  ASSERT_OK_AND_ASSIGN(GoodRadiusResult result,
                       GoodRadius(rng, w.points, w.t, w.domain, options));
  ASSERT_OK_AND_ASSIGN(Ball two, TwoApproxSmallestBall(w.points, w.t));
  EXPECT_LE(result.radius, 4.0 * two.radius + 4.0 * w.domain.RadiusFromIndex(1));
  // And a ball of that radius still holds a large share of t in the FULL data.
  std::size_t best = 0;
  for (std::size_t i = 0; i < w.points.size(); i += 16) {
    best = std::max(best, CountWithin(w.points, w.points[i], result.radius));
  }
  EXPECT_GE(best, w.t / 2);
}

// Monte-Carlo audit of the exponential mechanism: the selection distribution
// on neighboring quality vectors (each entry shifted by <= 1) stays within
// e^{eps} pointwise.
TEST(ExpMechPrivacyAuditTest, WithinBudgetOnNeighboringQualities) {
  Rng rng(13);
  const double eps = 1.0;
  const std::vector<double> q0 = {5.0, 4.0, 6.0, 3.0};
  const std::vector<double> q1 = {6.0, 3.0, 5.0, 4.0};  // Each moved by 1.
  const int trials = 300000;
  std::vector<int> h0(4, 0);
  std::vector<int> h1(4, 0);
  for (int i = 0; i < trials; ++i) {
    ASSERT_OK_AND_ASSIGN(std::size_t a,
                         ExponentialMechanism::SelectIndex(rng, q0, eps));
    ASSERT_OK_AND_ASSIGN(std::size_t b,
                         ExponentialMechanism::SelectIndex(rng, q1, eps));
    ++h0[a];
    ++h1[b];
  }
  for (int b = 0; b < 4; ++b) {
    const double p0 = static_cast<double>(h0[b]) / trials;
    const double p1 = static_cast<double>(h1[b]) / trials;
    EXPECT_LE(std::abs(std::log(p0 / p1)), eps * 1.1) << "bin " << b;
  }
}

TEST(KMeansEstimatorTest, RecoversSeparatedClustersInCanonicalOrder) {
  Rng rng(17);
  PointSet block(2);
  const std::vector<std::vector<double>> truth = {
      {0.2, 0.2}, {0.5, 0.8}, {0.9, 0.3}};
  for (int i = 0; i < 60; ++i) {
    block.Add(SampleBall(rng, truth[static_cast<std::size_t>(i) % 3], 0.02));
  }
  std::vector<double> out(6);
  ASSERT_OK(KMeansEstimator(3)(block, out));
  // Lexicographic order: (0.2,.2) < (0.5,.8) < (0.9,.3).
  EXPECT_NEAR(out[0], 0.2, 0.05);
  EXPECT_NEAR(out[1], 0.2, 0.05);
  EXPECT_NEAR(out[2], 0.5, 0.05);
  EXPECT_NEAR(out[3], 0.8, 0.05);
  EXPECT_NEAR(out[4], 0.9, 0.05);
  EXPECT_NEAR(out[5], 0.3, 0.05);
}

TEST(KMeansEstimatorTest, DeterministicAndValidatesArguments) {
  Rng rng(19);
  PointSet block(2);
  for (int i = 0; i < 20; ++i) {
    block.Add(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  std::vector<double> a(4);
  std::vector<double> b(4);
  ASSERT_OK(KMeansEstimator(2)(block, a));
  ASSERT_OK(KMeansEstimator(2)(block, b));
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);

  std::vector<double> wrong(3);
  EXPECT_FALSE(KMeansEstimator(2)(block, wrong).ok());
  const PointSet tiny = testing_util::MakePointSet(2, {0.1, 0.1});
  std::vector<double> out4(4);
  EXPECT_FALSE(KMeansEstimator(2)(tiny, out4).ok());
}

TEST(KMeansEstimatorTest, BlockOutputsConcentrateAcrossBlocks) {
  // The property SA relies on: different blocks of the same mixture produce
  // nearly identical R^{k*d} outputs (thanks to the canonical ordering).
  Rng rng(23);
  const ClusterWorkload w =
      MakeGaussianMixture(rng, 4000, 2, 2, 1u << 12, 0.01, 0.0);
  const auto estimator = KMeansEstimator(2);
  std::vector<std::vector<double>> outputs;
  for (int b = 0; b < 20; ++b) {
    std::vector<std::size_t> idx(50);
    for (auto& i : idx) i = rng.NextUint64(w.points.size());
    const PointSet block = w.points.Subset(idx);
    std::vector<double> out(4);
    ASSERT_OK(estimator(block, out));
    outputs.push_back(out);
  }
  // Pairwise spread of the outputs is a small multiple of sigma.
  double max_dist = 0.0;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    for (std::size_t j = i + 1; j < outputs.size(); ++j) {
      max_dist = std::max(max_dist, Distance(outputs[i], outputs[j]));
    }
  }
  EXPECT_LT(max_dist, 0.1);
}

// The IndexedDataset inversion of KCluster: one deletion-capable index
// peeled across the k rounds must release exactly the bytes of the legacy
// per-round subset+rebuild path — on every scenario family, at every thread
// count, and through a lent (snapshot/restored) shared index.
void ExpectSameKClusterResult(const KClusterResult& got,
                              const KClusterResult& want,
                              const std::string& context) {
  ASSERT_EQ(got.rounds.size(), want.rounds.size()) << context;
  EXPECT_EQ(got.uncovered, want.uncovered) << context;
  for (std::size_t round = 0; round < got.rounds.size(); ++round) {
    const std::string at = context + " round=" + std::to_string(round);
    EXPECT_EQ(got.rounds[round].ball.center, want.rounds[round].ball.center)
        << at;
    EXPECT_EQ(got.rounds[round].ball.radius, want.rounds[round].ball.radius)
        << at;
    EXPECT_EQ(got.rounds[round].radius_stage.grid_index,
              want.rounds[round].radius_stage.grid_index)
        << at;
    EXPECT_EQ(got.rounds[round].center_stage.center,
              want.rounds[round].center_stage.center)
        << at;
  }
}

TEST(KClusterIndexPropertyTest, IncrementalBitIdenticalToRebuild) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  const std::vector<std::string> families = registry.Names();
  ASSERT_EQ(families.size(), 9u);
  std::uint64_t seed = 2500;
  for (const std::string& family : families) {
    ScenarioSpec spec;
    spec.scenario = family;
    spec.n = 192;
    spec.dim = 2;
    spec.levels = 1u << 8;
    Rng data_rng(++seed);
    ASSERT_OK_AND_ASSIGN(ScenarioInstance instance,
                         GenerateScenario(data_rng, spec));

    KClusterOptions options;
    options.params = {8.0, 1e-8};
    options.beta = 0.2;
    options.k = 2;

    // Reference: the legacy per-round subset + fresh-index path, serial.
    options.index_mode = KClusterOptions::IndexMode::kRebuild;
    options.num_threads = 1;
    Rng ref_rng(4096);
    ASSERT_OK_AND_ASSIGN(
        KClusterResult reference,
        KCluster(ref_rng, instance.points, instance.domain, options));

    options.index_mode = KClusterOptions::IndexMode::kIncremental;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      options.num_threads = threads;
      Rng rng(4096);
      ASSERT_OK_AND_ASSIGN(
          KClusterResult run,
          KCluster(rng, instance.points, instance.domain, options));
      ExpectSameKClusterResult(
          run, reference,
          family + " incremental threads=" + std::to_string(threads));
    }

    // A lent shared index serves the same bytes and is restored afterwards
    // (grid warmed first so the restore has real live-range state to repair).
    ASSERT_OK_AND_ASSIGN(
        IndexedDataset shared,
        IndexedDataset::Create(instance.points, instance.domain));
    std::vector<double> warm(shared.size() * 2);
    shared.BatchKnn(2, warm, nullptr);
    options.num_threads = 1;
    Rng shared_rng(4096);
    ASSERT_OK_AND_ASSIGN(KClusterResult shared_run,
                         KCluster(shared_rng, instance.points, instance.domain,
                                  options, &shared));
    ExpectSameKClusterResult(shared_run, reference, family + " shared-index");
    EXPECT_EQ(shared.active_size(), shared.size()) << family;
    // And the restored index still answers like a fresh one.
    std::vector<double> warm_after(shared.size() * 2);
    shared.BatchKnn(2, warm_after, nullptr);
    EXPECT_EQ(warm, warm_after) << family;
  }
}

TEST(KClusterIndexPropertyTest, RejectsMismatchedSharedIndex) {
  Rng rng(31);
  const GridDomain domain(256, 2);
  PointSet s = testing_util::UniformCube(rng, 64, 2);
  domain.SnapAll(s);
  PointSet other = testing_util::UniformCube(rng, 64, 2);
  domain.SnapAll(other);

  KClusterOptions options;
  options.params = {4.0, 1e-8};
  options.beta = 0.2;
  options.k = 2;

  // Different data under the index: rejected.
  ASSERT_OK_AND_ASSIGN(IndexedDataset wrong_data,
                       IndexedDataset::Create(other, domain));
  EXPECT_FALSE(KCluster(rng, s, domain, options, &wrong_data).ok());

  // Rows already removed from the lent index: rejected.
  ASSERT_OK_AND_ASSIGN(IndexedDataset partial,
                       IndexedDataset::Create(s, domain));
  partial.Remove(std::size_t{0});
  EXPECT_FALSE(KCluster(rng, s, domain, options, &partial).ok());
}

}  // namespace
}  // namespace dpcluster
