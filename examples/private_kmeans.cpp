// Private k-means via sample-and-aggregate — the application of [16] the
// paper's introduction cites as motivation for better aggregators.
//
// Non-private Lloyd's k-means runs on disjoint blocks; each block outputs its
// k centers concatenated (in canonical order) as one point of R^{k*d}. For a
// well-separated mixture these block outputs concentrate, so the 1-cluster
// aggregator — running in the k*d-dimensional output space — privately
// recovers the full set of centers in one shot. The radius of the aggregate
// does not pay the sqrt(k*d) factor the old averaging aggregator would
// (Theorem 6.2 vs Theorem 6.3).

#include <cstdio>

#include "dpcluster/random/distributions.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"
#include "dpcluster/workload/synthetic.h"

int main() {
  using namespace dpcluster;
  Rng rng(808);

  // A well-separated 3-component mixture in the plane.
  const std::size_t k = 3;
  const ClusterWorkload w =
      MakeGaussianMixture(rng, 54000, k, 2, 1u << 12, 0.01, 0.0);

  SampleAggregateOptions options;
  options.params = {12.0, 1e-9};
  options.beta = 0.2;
  options.block_size = 9;  // Small blocks: each still sees every component.
  options.alpha = 0.6;     // A block misses a component now and then.
  // The aggregation happens in R^{k*d} = R^6.
  const GridDomain out_domain(1u << 10, k * 2);

  std::printf("Private k-means (k=%zu, d=2) via sample & aggregate:\n"
              "n=%zu rows, blocks of m=%zu, eps=%.0f, aggregating in R^%zu\n\n",
              k, w.points.size(), options.block_size, options.params.epsilon,
              k * 2);

  const auto result = SampleAggregate(rng, w.points, KMeansEstimator(k),
                                      out_domain, options);
  if (!result.ok()) {
    std::printf("SA failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Released centers (one R^6 point, reshaped):\n");
  for (std::size_t c = 0; c < k; ++c) {
    std::printf("  center %zu: (%.3f, %.3f)\n", c + 1,
                result->point[c * 2], result->point[c * 2 + 1]);
  }
  std::printf("\nPlanted component centers (sorted for comparison):\n");
  for (const Ball& planted : w.all_planted) {
    std::printf("            (%.3f, %.3f)\n", planted.center[0],
                planted.center[1]);
  }
  std::printf("\nBlocks aggregated: %zu; amplified budget (Lemma 6.4): "
              "(%.3f, %.2e)-DP\n",
              result->blocks, result->amplified.epsilon,
              result->amplified.delta);
  return 0;
}
