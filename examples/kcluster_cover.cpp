// k-ball covering (Observation 3.5) through the Solver façade: the
// "k_cluster" algorithm iterates the 1-cluster solver k times, removing
// covered points between rounds — the paper's heuristic route from 1-cluster
// to k-clustering. The Response carries every released ball plus the
// cross-round privacy ledger.

#include <cstdio>

#include "dpcluster/api/solver.h"
#include "dpcluster/workload/synthetic.h"

int main() {
  using namespace dpcluster;
  Rng rng(555);

  // Three shops' worth of purchase locations plus 5% noise.
  const std::size_t k = 3;
  const ClusterWorkload w =
      MakeGaussianMixture(rng, 4000, k, 2, 1u << 12, 0.012, 0.05);

  Request request;
  request.algorithm = "k_cluster";
  request.data = w.points;
  request.domain = w.domain;
  request.k = k;
  request.budget = {24.0, 1e-8};  // Total budget, split across the k rounds.
  request.beta = 0.2;

  std::printf("Covering a %zu-component mixture (n=%zu) with %zu private "
              "balls, total eps=%.0f...\n\n",
              k, w.points.size(), k, request.budget.epsilon);

  Solver solver(SolverOptions{.seed = 555});
  const auto response = solver.Run(request);
  if (!response.ok()) {
    std::printf("Solver failed: %s\n", response.status().ToString().c_str());
    return 1;
  }

  for (std::size_t i = 0; i < response->balls.size(); ++i) {
    const Ball& ball = response->balls[i];
    std::printf("ball %zu: center (%.3f, %.3f), radius %.3f\n", i + 1,
                ball.center[0], ball.center[1], ball.radius);
  }
  std::printf("\nPlanted component centers:\n");
  for (const Ball& planted : w.all_planted) {
    std::printf("         (%.3f, %.3f)\n", planted.center[0], planted.center[1]);
  }
  std::printf("\nUncovered points (evaluation only): %zu of %zu (%.1f%%)\n",
              response->uncovered, w.points.size(),
              100.0 * static_cast<double>(response->uncovered) /
                  static_cast<double>(w.points.size()));
  std::printf("\nCharged eps=%.1f delta=%.2g across %zu interactions "
              "(basic composition; the paper's k <~ (eps n)^{2/3} bound is "
              "exactly this budget split).\n",
              response->charged.epsilon, response->charged.delta,
              response->ledger.interactions());
  return 0;
}
