// k-ball covering (Observation 3.5): iterate the 1-cluster solver k times,
// removing covered points between rounds, to privately sketch the cluster
// structure of a dataset — the paper's heuristic route from 1-cluster to
// k-clustering.

#include <cstdio>

#include "dpcluster/core/k_cluster.h"
#include "dpcluster/workload/synthetic.h"

int main() {
  using namespace dpcluster;
  Rng rng(555);

  // Three shops' worth of purchase locations plus 5% noise.
  const std::size_t k = 3;
  const ClusterWorkload w =
      MakeGaussianMixture(rng, 4000, k, 2, 1u << 12, 0.012, 0.05);

  KClusterOptions options;
  options.params = {24.0, 1e-8};  // Total budget, split across the k rounds.
  options.beta = 0.2;
  options.k = k;

  std::printf("Covering a %zu-component mixture (n=%zu) with %zu private "
              "balls, total eps=%.0f...\n\n",
              k, w.points.size(), k, options.params.epsilon);

  const auto result = KCluster(rng, w.points, w.domain, options);
  if (!result.ok()) {
    std::printf("KCluster failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  for (std::size_t i = 0; i < result->rounds.size(); ++i) {
    const Ball& ball = result->rounds[i].ball;
    std::printf("ball %zu: center (%.3f, %.3f), radius %.3f\n", i + 1,
                ball.center[0], ball.center[1], ball.radius);
  }
  std::printf("\nPlanted component centers:\n");
  for (const Ball& planted : w.all_planted) {
    std::printf("         (%.3f, %.3f)\n", planted.center[0], planted.center[1]);
  }
  std::printf("\nUncovered points (evaluation only): %zu of %zu (%.1f%%)\n",
              result->uncovered, w.points.size(),
              100.0 * static_cast<double>(result->uncovered) /
                  static_cast<double>(w.points.size()));
  std::printf("Each round ran with eps=%.1f (basic composition; the paper's\n"
              "k <~ (eps n)^{2/3} bound is exactly this budget split).\n",
              options.params.epsilon / static_cast<double>(k));
  return 0;
}
