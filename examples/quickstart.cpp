// Quickstart: solve the 1-cluster problem through the Solver façade.
//
//   1. Describe the data universe X^d (a quantized cube, Definition 1.2).
//   2. Put your points in a PointSet (snapped to the grid).
//   3. Fill a Request (algorithm name, data, domain, budget) and Solver::Run.
//
// The Response carries the released ball, the per-phase privacy ledger, and
// (non-private) utility diagnostics. The pre-façade entry point — calling
// OneCluster() directly — still works; see the library headers.
//
// Build & run:  ./build/example_quickstart

#include <cstdio>

#include "dpcluster/api/solver.h"
#include "dpcluster/workload/synthetic.h"

int main() {
  using namespace dpcluster;

  // A reproducible data source: 4096 points in [0,1]^2, of which t=2000 lie
  // in a planted ball of radius 0.015 (the "small cluster" we want to find).
  Rng rng(2016);
  PlantedClusterSpec spec;
  spec.n = 4096;
  spec.t = 2000;
  spec.dim = 2;
  spec.levels = 1u << 16;  // |X| = 65536 grid levels per axis.
  spec.cluster_radius = 0.015;
  const ClusterWorkload workload = MakePlantedCluster(rng, spec);

  // The typed request: which algorithm, on what data, with what budget.
  Request request;
  request.algorithm = "one_cluster";
  request.data = workload.points;
  request.domain = workload.domain;
  request.t = workload.t;
  request.budget = {4.0, 1e-9};  // (eps, delta) for the whole pipeline.
  request.beta = 0.1;            // Failure probability of the utility claim.

  std::printf("Solving the 1-cluster problem (n=%zu, t=%zu, d=%zu, eps=%.1f)\n",
              request.data.size(), request.t, spec.dim,
              request.budget.epsilon);

  Solver solver;
  const auto response = solver.Run(request);
  if (!response.ok()) {
    std::printf("Solver failed: %s\n", response.status().ToString().c_str());
    return 1;
  }

  std::printf("\nReleased center: (%.4f, %.4f)\n", response->ball.center[0],
              response->ball.center[1]);
  std::printf("Planted  center: (%.4f, %.4f)\n", workload.planted.center[0],
              workload.planted.center[1]);
  std::printf("Guarantee radius (O(sqrt(log n)) * r): %.4f\n",
              response->ball.radius);
  std::printf("%s\n", response->note.c_str());

  // The per-phase ledger: one charge per mechanism, summing to the budget.
  std::printf("\n%s\n", response->ledger.Report().c_str());

  // Evaluation (not private — the solver scored the output on the raw data).
  if (response->diagnostics.has_value()) {
    const EvalMetrics& m = *response->diagnostics;
    std::printf("\nEvaluation: captured %zu of t=%zu points; effective radius "
                "around the released center: %.4f (%.2fx the optimum)\n",
                m.captured, request.t, m.tight_radius, m.w_effective);
  }
  std::printf("Solved in %.1f ms\n", response->wall_ms);
  return 0;
}
