// Quickstart: solve the 1-cluster problem on a synthetic dataset.
//
//   1. Describe the data universe X^d (a quantized cube, Definition 1.2).
//   2. Put your points in a PointSet (snapped to the grid).
//   3. Pick a privacy budget and call OneCluster.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "dpcluster/core/one_cluster.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"

int main() {
  using namespace dpcluster;

  // A reproducible data source: 5000 points in [0,1]^2, of which t=2000 lie
  // in a planted ball of radius 0.015 (the "small cluster" we want to find).
  Rng rng(2016);
  PlantedClusterSpec spec;
  spec.n = 4096;
  spec.t = 2000;
  spec.dim = 2;
  spec.levels = 1u << 16;  // |X| = 65536 grid levels per axis.
  spec.cluster_radius = 0.015;
  const ClusterWorkload workload = MakePlantedCluster(rng, spec);

  // (eps, delta)-differential privacy budget for the whole pipeline.
  OneClusterOptions options;
  options.params = {4.0, 1e-9};
  options.beta = 0.1;  // Failure probability of the utility guarantee.

  std::printf("Solving the 1-cluster problem (n=%zu, t=%zu, d=%zu, eps=%.1f)\n",
              workload.points.size(), workload.t, spec.dim,
              options.params.epsilon);
  std::printf("Recommended minimum t for this configuration: %.0f\n",
              RecommendedMinT(spec.n, workload.domain, options));

  auto result =
      OneCluster(rng, workload.points, workload.t, workload.domain, options);
  if (!result.ok()) {
    std::printf("OneCluster failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nReleased center: (%.4f, %.4f)\n", result->ball.center[0],
              result->ball.center[1]);
  std::printf("Planted  center: (%.4f, %.4f)\n", workload.planted.center[0],
              workload.planted.center[1]);
  std::printf("GoodRadius phase returned r = %.4f (<= 4 * r_opt)\n",
              result->radius_stage.radius);
  std::printf("Guarantee radius (O(sqrt(log n)) * r): %.4f\n",
              result->ball.radius);

  // Evaluation (not private — uses the raw data to score the output).
  const auto metrics = Evaluate(workload.points, workload.t, result->ball);
  std::printf("\nEvaluation: captured %zu of t=%zu points; effective radius "
              "around the released center: %.4f (%.2fx the optimum)\n",
              metrics->captured, workload.t, metrics->tight_radius,
              metrics->w_effective);
  return 0;
}
