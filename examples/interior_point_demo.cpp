// Interior point via 1-cluster (Algorithm 3 / Theorem 5.3): the reduction the
// paper uses to prove its lower bound, doubling as a useful primitive — a
// private "typical value" for 1D data that is guaranteed (w.h.p.) to lie
// between the minimum and maximum of the dataset.
//
// The demo also illustrates why the finite domain matters: the same n that
// comfortably solves |X| = 2^16 fails for astronomically fine domains, which
// is the measurable face of Corollary 5.4 (no private algorithm works for
// infinite X).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dpcluster/core/interior_point.h"
#include "dpcluster/random/distributions.h"

int main() {
  using namespace dpcluster;
  Rng rng(31337);

  // Response times of a service, bimodal (cache hits vs misses).
  const std::size_t m = 3000;
  std::vector<double> latencies(m);
  for (double& x : latencies) {
    x = (rng.NextDouble() < 0.7) ? 0.12 + 0.01 * rng.NextDouble()
                                 : 0.55 + 0.05 * rng.NextDouble();
  }

  for (int log_levels : {16, 30}) {
    const GridDomain domain(std::uint64_t{1} << log_levels, 1);
    std::vector<double> snapped = latencies;
    for (double& x : snapped) x = domain.Snap(x);
    const double lo = *std::min_element(snapped.begin(), snapped.end());
    const double hi = *std::max_element(snapped.begin(), snapped.end());

    InteriorPointOptions options;
    options.params = {2.0, 1e-9};
    options.beta = 0.1;

    std::printf("Domain |X| = 2^%d: ", log_levels);
    const auto result = InteriorPoint(rng, snapped, domain, options);
    if (!result.ok()) {
      std::printf("failed (%s)\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("released point %.4f — %s [data range %.4f..%.4f, |J|=%zu]\n",
                result->point,
                (result->point >= lo && result->point <= hi) ? "interior"
                                                             : "NOT interior",
                lo, hi, result->candidates);
  }

  std::printf("\nTheorem 5.3 turns any 1-cluster solver into an interior-point\n"
              "solver, and [BNSV15] proves interior point needs n >= "
              "Omega(log*|X|)\n— hence the 1-cluster problem is impossible over "
              "infinite domains\n(Corollary 5.4).\n");
  return 0;
}
