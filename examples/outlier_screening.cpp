// Outlier screening — Section 1.1's second motivation, served through the
// Solver façade: the "outlier_screen" algorithm releases a ball holding ~90%
// of the data; membership in the ball is the inlier predicate h, and the
// downstream private analysis runs on the screened data. Restricting the
// domain to the ball shrinks the global sensitivity, so the same epsilon buys
// far less noise — often the difference between a useless and a useful
// release.

#include <cmath>
#include <cstdio>

#include "dpcluster/api/solver.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"

int main() {
  using namespace dpcluster;
  Rng rng(77);

  // Sensor readings: 90% behave (cluster of radius 0.02 around the true
  // operating point), 10% are faulty and report garbage.
  const GridDomain domain(1u << 14, 2);
  const std::vector<double> operating_point = {0.42, 0.58};
  const std::size_t n = 4000;
  PointSet readings(2);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 10 == 0) {
      readings.Add(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
    } else {
      readings.Add(SampleBall(rng, operating_point, 0.02));
    }
  }
  domain.SnapAll(readings);

  // --- Naive private mean: sensitivity is the whole cube. -----------------
  const std::vector<double> cube_center = {0.5, 0.5};
  const auto naive = NoisyAverage(rng, readings, cube_center,
                                  std::sqrt(2.0) / 2.0, {0.5, 1e-9});

  // --- Screened private mean: find the 90% ball first. --------------------
  Request request;
  request.algorithm = "outlier_screen";
  request.data = readings;
  request.domain = domain;
  request.inlier_fraction = 0.9;
  request.budget = {4.5, 1e-9};  // 1-cluster pipeline + radius refinement.
  request.beta = 0.1;
  // ~11% of the epsilon tightens the released radius (the 1-cluster
  // guarantee radius is a worst-case bound, often the whole cube).
  request.tuning.refine_fraction = 0.111;

  Solver solver(SolverOptions{.seed = 77});
  const auto screen = solver.Run(request);
  if (!screen.ok()) {
    std::printf("screen failed: %s\n", screen.status().ToString().c_str());
    return 1;
  }
  const Ball& ball = screen->ball;
  const auto screened =
      NoisyAverage(rng, readings, ball.center, ball.radius, {0.5, 1e-9});

  std::printf("True operating point        : (%.4f, %.4f)\n",
              operating_point[0], operating_point[1]);
  if (naive.ok()) {
    std::printf("Naive private mean          : (%.4f, %.4f)   error %.4f\n",
                naive->average[0], naive->average[1],
                Distance(naive->average, operating_point));
  }
  std::printf("Released inlier ball        : center (%.4f, %.4f), radius %.4f\n",
              ball.center[0], ball.center[1], ball.radius);
  if (screened.ok()) {
    std::printf("Screened private mean       : (%.4f, %.4f)   error %.4f\n",
                screened->average[0], screened->average[1],
                Distance(screened->average, operating_point));
  }

  // The released ball is post-processing-free: membership screens a dataset
  // for further analysis.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < readings.size(); ++i) {
    if (ball.Contains(readings[i])) ++kept;
  }
  std::printf("\nScreen keeps %zu of %zu readings (evaluation only); the\n"
              "noise reach dropped from %.3f (cube) to %.3f (ball) — the\n"
              "sensitivity reduction Section 1.1 describes.\n",
              kept, readings.size(), std::sqrt(2.0) / 2.0, ball.radius);
  std::printf("\nPrivacy spent on the screen: %s\n",
              solver.TotalSpend().ToString().c_str());
  return 0;
}
