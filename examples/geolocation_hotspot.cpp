// Geolocation hotspot discovery — the paper's "map searches" motivation
// (Section 1.1, data exploration): locate a dense geographic area of a
// sensitive population without revealing any individual's location.
//
// The scenario: lat/lon pings of 20000 users over a city; 30% concentrate
// around a venue. We release a hotspot ball under (2, 1e-9)-DP, then refine
// its radius privately so the released area is tight enough to act on.

#include <cstdio>

#include "dpcluster/core/one_cluster.h"
#include "dpcluster/core/radius_refine.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/random/distributions.h"

int main() {
  using namespace dpcluster;
  Rng rng(20260610);

  // City coordinates normalized to [0,1]^2, quantized to a 2^16 grid
  // (~1.5m resolution for a 100km city).
  const GridDomain city(1u << 16, 2);

  // Synthetic pings: 30% around the venue at (0.312, 0.587) within ~400m,
  // the rest spread over the city.
  const std::size_t n = 20000;
  const std::size_t venue_users = 6000;
  const std::vector<double> venue = {0.312, 0.587};
  PointSet pings(2);
  for (std::size_t i = 0; i < venue_users; ++i) {
    pings.Add(SampleBall(rng, venue, 0.004));
  }
  std::vector<double> p(2);
  for (std::size_t i = venue_users; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    pings.Add(p);
  }
  city.SnapAll(pings);

  std::printf("Searching for a hotspot holding >= %zu of %zu pings under "
              "(2, 1e-9)-DP...\n", venue_users, n);

  OneClusterOptions options;
  options.params = {2.0, 1e-9};
  options.beta = 0.1;
  // The ping table is large; the quadratic radius stage runs on a subsample
  // cap — raise the cap instead if you have the memory.
  options.radius.max_profile_points = 4096;

  // The radius stage is quadratic; for big tables give it a subsample.
  std::vector<std::size_t> sample_idx(4096);
  for (auto& idx : sample_idx) idx = rng.NextUint64(n);
  const PointSet radius_sample = pings.Subset(sample_idx);

  GoodRadiusOptions radius_opts = options.radius;
  radius_opts.params = options.params.Fraction(0.4);
  radius_opts.beta = options.beta / 2.0;
  const auto radius = GoodRadius(
      rng, radius_sample,
      venue_users * radius_sample.size() / n,  // Rescale t to the subsample.
      city, radius_opts);
  if (!radius.ok()) {
    std::printf("radius stage failed: %s\n", radius.status().ToString().c_str());
    return 1;
  }

  GoodCenterOptions center_opts = options.center;
  center_opts.params = options.params.Fraction(0.4);
  center_opts.beta = options.beta / 2.0;
  const double r = std::max(radius->radius, city.RadiusFromIndex(1));
  const auto center = GoodCenter(rng, pings, venue_users, r, center_opts);
  if (!center.ok()) {
    std::printf("center stage failed: %s\n", center.status().ToString().c_str());
    return 1;
  }

  // Spend the last 20%% of the budget tightening the released radius.
  RadiusRefineOptions refine;
  refine.epsilon = options.params.epsilon * 0.2;
  refine.beta = 0.1;
  const auto tight =
      RefineRadius(rng, pings, center->center, venue_users, city, refine);

  std::printf("\nReleased hotspot center: (%.4f, %.4f)  [venue at (%.3f, %.3f)]\n",
              center->center[0], center->center[1], venue[0], venue[1]);
  std::printf("Refined hotspot radius:  %.4f  [venue spread 0.004]\n",
              tight.ok() ? *tight : r);
  if (tight.ok()) {
    Ball hotspot;
    hotspot.center = center->center;
    hotspot.radius = *tight;
    std::printf("Pings inside the released hotspot (evaluation only): %zu\n",
                CountInBall(pings, hotspot));
  }
  std::printf("\nTotal privacy spend: (%.1f, %.1e)-DP "
              "(0.4 + 0.4 + 0.2 epsilon split).\n",
              options.params.epsilon, options.params.delta);
  return 0;
}
