// Sample and aggregate (Section 6): compile an off-the-shelf, non-private
// estimator into a differentially private one. The estimator here is the
// coordinate median — robust, but with terrible global sensitivity, so the
// naive "add noise to the output" route is useless. SA instead runs it on
// disjoint blocks and aggregates the block outputs with the 1-cluster solver:
// if the estimator is subsample-stable, the aggregate is both private and
// accurate (Theorem 6.3) — without paying the sqrt(d) radius factor of the
// original sample-and-aggregate of [16].

#include <algorithm>
#include <cstdio>

#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"

int main() {
  using namespace dpcluster;
  Rng rng(99);

  // Salaries-like data: heavy cluster around the typical value plus 15%
  // adversarial rows pinned at the domain edge.
  const std::size_t n = 54000;
  PointSet data(1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        (rng.NextDouble() < 0.15)
            ? 1.0
            : std::clamp(0.37 + SampleGaussian(rng, 0.03), 0.0, 1.0);
    data.Add(std::vector<double>{x});
  }

  SampleAggregateOptions options;
  options.params = {4.0, 1e-9};
  options.beta = 0.1;
  options.block_size = 15;  // The stability parameter m.
  options.alpha = 0.8;
  const GridDomain out_domain(1u << 12, 1);

  std::printf("Compiling the (non-private) coordinate median into a private\n"
              "estimator via SA: n=%zu rows, blocks of m=%zu, eps=%.1f\n\n",
              n, options.block_size, options.params.epsilon);

  const auto result =
      SampleAggregate(rng, data, MedianEstimator(), out_domain, options);
  if (!result.ok()) {
    std::printf("SA failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Blocks evaluated (k)        : %zu\n", result->blocks);
  std::printf("Released stable point z     : %.4f   (clean median ~0.37)\n",
              result->point[0]);
  std::printf("Aggregator ball radius      : %.4f\n", result->radius);
  std::printf("Amplified privacy (Lemma 6.4): (%.3f, %.2e)-DP\n",
              result->amplified.epsilon, result->amplified.delta);
  std::printf("\nThe 15%% adversarial rows shift the global mean by ~0.09 but\n"
              "cannot move the block medians, so the aggregate stays on the\n"
              "clean value — the \"compile non-private analyses\" promise of\n"
              "the sample-and-aggregate framework.\n");
  return 0;
}
